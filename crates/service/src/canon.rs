//! Canonical, isomorphism-invariant keys for implication queries.
//!
//! Two queries `(Σ, σ)` and `(Σ', σ')` pose the *same* implication problem
//! whenever they differ only by a renaming of tableau variables, a
//! reordering of hypothesis rows, or a reordering (or duplication) of the
//! dependencies of Σ — the chase outcome is invariant under all three (the
//! paper's constructions are all "up to renaming"). A production service
//! sees vast numbers of such structurally identical queries, so the answer
//! cache keys on a **canonical form**:
//!
//! * each dependency is encoded as a token stream whose variables are
//!   numbered by first occurrence under the *lexicographically minimal*
//!   hypothesis-row order (a backtracking search with prefix pruning, the
//!   same shape as the row-matching search in
//!   `typedtd_relational::isomorphism` — both explore row pairings and cut
//!   on the induced value bijection);
//! * Σ is the *sorted, deduplicated set* of its dependencies' encodings;
//! * the universe contributes only its width and typing discipline —
//!   attribute *names* never affect the answer.
//!
//! Equal keys therefore imply isomorphic queries, and renamed/reordered
//! resubmissions hit the cache. The converse direction is guarded for
//! pathological tableaux: when the row-order search would blow up (more
//! rows than [`ROW_CAP`], or more than [`LEAF_CAP`] candidate orders), the
//! encoder falls back to the submitted row order — still deterministic and
//! still *sound* (a false key match is impossible because the encoding is
//! injective up to renaming), it merely forfeits hits for that dependency.
//! The `isomorphic` machinery remains available as an independent
//! cross-check of key collisions (see `ServiceConfig::verify_cache_hits`
//! and this module's tests).
//!
//! # Column-permutation normalization
//!
//! A fourth invariance rides on top of the per-dependency encodings:
//! applying one column permutation **uniformly** to every dependency of a
//! query relabels the universe's attributes, and attribute identity never
//! affects the answer (the key already reduces the universe to width +
//! typing discipline). [`query_parts`] therefore normalizes the *whole
//! query's* column order before keying: each column gets a signature that
//! is invariant under value renaming, hypothesis-row order, and Σ order
//! (per-column value-frequency profiles, cross-column sharing counts, and
//! conclusion/equality linkage, aggregated as a sorted multiset over the
//! dependencies), and columns are sorted by signature with the submitted
//! position as the tiebreak. No tie enumeration is needed on the hot
//! submit path: columns that *genuinely* tie are almost always related by
//! a query automorphism (fully interchangeable spectator columns), and
//! reordering an automorphic block changes nothing — the canonical
//! encodings come out identical either way, so permuted resubmissions
//! still collide. A tie between columns the signature fails to separate
//! that are *not* automorphic merely forfeits the hit; it can never
//! manufacture a false one (the chosen permutation is part of how the key
//! was computed, and the per-dependency encodings stay injective up to
//! renaming). Queries wider than [`COL_CAP`] skip the normalization
//! entirely (identity order). Verified cache hits compare goal hypotheses
//! *after* each side's own canonical permutation (see
//! [`permute_relation`]), which is exactly the equivalence equal keys now
//! certify.

use typedtd_dependencies::TdOrEgd;
use typedtd_relational::{FxHashMap, Relation, Tuple, Universe, Value, ValuePool};

/// Hypothesis-row count above which row-order canonicalization is skipped.
pub const ROW_CAP: usize = 8;

/// Bound on complete row orders examined before falling back.
pub const LEAF_CAP: usize = 512;

/// Universe width above which column-permutation normalization is skipped
/// (signature cost grows quadratically with width; wide universes keep
/// the submitted column order).
pub const COL_CAP: usize = 8;

const TAG_TD: u32 = u32::MAX;
const TAG_EGD: u32 = u32::MAX - 1;

/// The canonical key of one query `(Σ, σ)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QueryKey {
    /// Universe width (attribute names are irrelevant to the answer).
    width: u16,
    /// Domain discipline (typedness changes which embeddings exist).
    typed: bool,
    /// Sorted, deduplicated canonical encodings of Σ.
    sigma: Vec<Vec<u32>>,
    /// Canonical encoding of the goal.
    goal: Vec<u32>,
}

impl QueryKey {
    /// Appends a stable, self-delimiting byte encoding of this key to
    /// `out` (little-endian lengths and words) — the persistence log's
    /// record body format. [`QueryKey::decode`] round-trips it exactly.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.width.to_le_bytes());
        out.push(u8::from(self.typed));
        out.extend_from_slice(&(self.sigma.len() as u32).to_le_bytes());
        for dep in &self.sigma {
            out.extend_from_slice(&(dep.len() as u32).to_le_bytes());
            for w in dep {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.goal.len() as u32).to_le_bytes());
        for w in &self.goal {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Decodes a key from the front of `bytes` (the inverse of
    /// [`QueryKey::encode_into`]), returning it with the number of bytes
    /// consumed. `None` on any malformed input — truncated buffers and
    /// absurd lengths are rejected, never panicked on, so a corrupted log
    /// record degrades to a dropped record.
    pub fn decode(bytes: &[u8]) -> Option<(Self, usize)> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*at..*at + n)?;
            *at += n;
            Some(s)
        };
        let width = u16::from_le_bytes(take(&mut at, 2)?.try_into().ok()?);
        if width == 0 {
            return None;
        }
        let typed = match take(&mut at, 1)?[0] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let read_words = |at: &mut usize| -> Option<Vec<u32>> {
            let len = u32::from_le_bytes(take(at, 4)?.try_into().ok()?) as usize;
            // A length can't exceed the words the buffer could still hold.
            if len > bytes.len().saturating_sub(*at) / 4 {
                return None;
            }
            (0..len)
                .map(|_| Some(u32::from_le_bytes(take(at, 4)?.try_into().ok()?)))
                .collect()
        };
        let ndeps = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
        if ndeps > bytes.len().saturating_sub(at) / 4 {
            return None;
        }
        let mut sigma = Vec::with_capacity(ndeps);
        for _ in 0..ndeps {
            sigma.push(read_words(&mut at)?);
        }
        let goal = read_words(&mut at)?;
        Some((
            Self {
                width,
                typed,
                sigma,
                goal,
            },
            at,
        ))
    }

    /// Rebuilds the goal's hypothesis tableau from the canonical encoding,
    /// over a throwaway pool — the verification witness for a cache entry
    /// replayed from the persistence log. The goal encoding starts
    /// `[tag, hyp_len, hyp_len × width canonical ids, …]`, so each id maps
    /// to one fresh value; the result is isomorphic (value bijection) to
    /// `permute_relation(goal_hypothesis(goal), perm)` of any query that
    /// keys here, which is exactly what verified hits compare. `None` when
    /// the encoding is malformed (a decoded-from-disk key whose checksum
    /// lied).
    pub fn witness_relation(&self) -> Option<Relation> {
        let width = self.width as usize;
        if width == 0 || self.goal.len() < 2 {
            return None;
        }
        if self.goal[0] != TAG_TD && self.goal[0] != TAG_EGD {
            return None;
        }
        let nrows = self.goal[1] as usize;
        let body = self.goal.get(2..)?;
        if nrows.checked_mul(width)? > body.len() {
            return None;
        }
        // The witness only feeds value-bijection isomorphism checks, so an
        // untyped universe works for typed queries too (typedness lives in
        // the key itself, not the witness).
        let universe = Universe::untyped((0..width).map(|c| format!("c{c}")).collect::<Vec<_>>());
        let mut pool = ValuePool::new(universe.clone());
        let mut values: FxHashMap<u32, Value> = FxHashMap::default();
        let mut rel = Relation::new(universe);
        for row in body[..nrows * width].chunks_exact(width) {
            rel.insert(Tuple::new(
                row.iter()
                    .map(|id| {
                        *values
                            .entry(*id)
                            .or_insert_with(|| pool.untyped(&format!("v{id}")))
                    })
                    .collect(),
            ));
        }
        Some(rel)
    }
}

/// Computes the canonical key of `(sigma, goal)`.
pub fn query_key(sigma: &[TdOrEgd], goal: &TdOrEgd) -> QueryKey {
    query_key_and_sigma_keys(sigma, goal).0
}

/// As [`query_key`], but also returns each Σ dependency's canonical
/// encoding, aligned with the submitted order — so a scheduler can dedup
/// Σ without canonicalizing every dependency a second time.
pub fn query_key_and_sigma_keys(sigma: &[TdOrEgd], goal: &TdOrEgd) -> (QueryKey, Vec<Vec<u32>>) {
    let parts = query_parts(sigma, goal);
    (parts.key, parts.sigma_keys)
}

/// Everything `submit` needs from one canonicalization pass.
pub struct QueryParts {
    /// The canonical key of the whole query.
    pub key: QueryKey,
    /// Each Σ dependency's canonical encoding, aligned with the submitted
    /// order (for Σ dedup without a second canonicalization).
    pub sigma_keys: Vec<Vec<u32>>,
    /// The goal's canonical encoding (for the goal-in-Σ fast path:
    /// `sigma_keys.contains(&goal_key)` means `σ ∈ Σ` up to isomorphism,
    /// so `Σ ⊨ σ` and `Σ ⊨_f σ` hold by reflexivity).
    pub goal_key: Vec<u32>,
    /// The canonical column permutation the key was computed under:
    /// canonical position `i` reads submitted column `perm[i]`. Two
    /// queries with equal keys are isomorphic *after* each applies its own
    /// permutation, so hit verification must compare
    /// [`permute_relation`]-normalized hypotheses.
    pub perm: Vec<u16>,
}

/// Canonicalizes a query once, returning the key plus the per-dependency
/// encodings of Σ and of the goal (all under the canonical column
/// permutation, which is returned alongside).
pub fn query_parts(sigma: &[TdOrEgd], goal: &TdOrEgd) -> QueryParts {
    let universe = match goal {
        TdOrEgd::Td(t) => t.universe().clone(),
        TdOrEgd::Egd(e) => e.universe().clone(),
    };
    let width = universe.width();
    let perm = column_order(sigma, goal, width);
    let dep_keys: Vec<Vec<u32>> = sigma.iter().map(|d| dep_key_under(d, &perm)).collect();
    let goal_key = dep_key_under(goal, &perm);
    let mut sigma_keys = dep_keys.clone();
    sigma_keys.sort_unstable();
    sigma_keys.dedup();
    let key = QueryKey {
        width: width as u16,
        typed: universe.is_typed(),
        sigma: sigma_keys,
        goal: goal_key.clone(),
    };
    QueryParts {
        key,
        sigma_keys: dep_keys,
        goal_key,
        perm,
    }
}

/// `rel` with its columns reordered into the canonical positions of
/// `perm` (position `i` takes the submitted column `perm[i]`). The result
/// lives over the same universe and is only meaningful for *structural*
/// comparison (value-bijection isomorphism) against other relations
/// normalized the same way — which is exactly what verified cache hits do.
pub fn permute_relation(rel: &Relation, perm: &[u16]) -> Relation {
    if is_identity(perm) {
        return rel.clone();
    }
    let mut out = Relation::new(rel.universe().clone());
    for row in rel.iter() {
        let vals: Vec<_> = row.values().collect();
        out.insert(Tuple::new(perm.iter().map(|&c| vals[c as usize]).collect()));
    }
    out
}

fn is_identity(perm: &[u16]) -> bool {
    perm.iter().enumerate().all(|(i, &c)| i == c as usize)
}

/// The canonical column order for `(sigma, goal)`: columns sorted by
/// their invariant signature, submitted position breaking ties. A tied
/// block is almost always an automorphic (fully interchangeable) set of
/// columns, for which any order yields the same canonical encodings —
/// so no enumeration runs on the hot submit path.
fn column_order(sigma: &[TdOrEgd], goal: &TdOrEgd, width: usize) -> Vec<u16> {
    let mut order: Vec<u16> = (0..width as u16).collect();
    if !(2..=COL_CAP).contains(&width) {
        return order;
    }
    let sigs = column_signatures(sigma, goal, width);
    order.sort_by(|&a, &b| sigs[a as usize].cmp(&sigs[b as usize]).then(a.cmp(&b)));
    order
}

/// The per-column invariant signatures of the whole query, one per
/// column: the goal's per-column descriptor followed by the sorted
/// multiset of Σ's descriptors (separated by sentinels). Columns related
/// by a uniform permutation of the query carry equal signatures in their
/// permuted positions, so the signature sort is itself
/// permutation-invariant. This runs on every cached submit, so each
/// dependency is scanned once for all of its columns.
fn column_signatures(sigma: &[TdOrEgd], goal: &TdOrEgd, width: usize) -> Vec<Vec<u32>> {
    let goal_descs = dep_col_descs(goal, width);
    let sigma_descs: Vec<Vec<Vec<u32>>> =
        sigma.iter().map(|d| dep_col_descs(d, width)).collect();
    (0..width)
        .map(|c| {
            let mut sig = goal_descs[c].clone();
            sig.push(u32::MAX);
            let mut deps: Vec<&Vec<u32>> = sigma_descs.iter().map(|d| &d[c]).collect();
            deps.sort_unstable();
            for d in deps {
                sig.extend(d.iter());
                sig.push(u32::MAX);
            }
            sig
        })
        .collect()
}

/// One dependency's descriptors, one per column: counts only (invariant
/// under value renaming and hypothesis-row order), computed in a single
/// pass over the tableau.
fn dep_col_descs(dep: &TdOrEgd, width: usize) -> Vec<Vec<u32>> {
    let hyp = match dep {
        TdOrEgd::Td(t) => t.hypothesis(),
        TdOrEgd::Egd(e) => e.hypothesis(),
    };
    // Per column: the column's values (for the frequency profile) and the
    // cross-column sharing count, gathered row by row.
    let mut col_vals: Vec<Vec<Value>> = vec![Vec::with_capacity(hyp.len()); width];
    let mut shared = vec![0u32; width];
    for row in hyp {
        let vals = row.values();
        for (c, v) in vals.iter().enumerate() {
            col_vals[c].push(*v);
            shared[c] += vals
                .iter()
                .enumerate()
                .filter(|&(i, w)| i != c && w == v)
                .count() as u32;
        }
    }
    (0..width)
        .map(|c| {
            let mut out = Vec::with_capacity(8 + hyp.len());
            // Value-frequency profile: sorted multiset of per-distinct-
            // value occurrence counts (tableaux are small, so a sort
            // beats a hash map).
            col_vals[c].sort_unstable();
            let mut profile: Vec<u32> = Vec::new();
            let mut run = 0u32;
            for (i, v) in col_vals[c].iter().enumerate() {
                run += 1;
                if i + 1 == col_vals[c].len() || col_vals[c][i + 1] != *v {
                    profile.push(run);
                    run = 0;
                }
            }
            profile.sort_unstable();
            match dep {
                TdOrEgd::Td(t) => {
                    let w = t.conclusion().values();
                    out.push(0);
                    out.push(hyp.len() as u32);
                    out.push(profile.len() as u32);
                    out.push(shared[c]);
                    out.extend(&profile);
                    // Conclusion linkage: same-column hypothesis
                    // occurrences of the conclusion value, its repeats
                    // across the conclusion row, and whether it is
                    // existential (fresh anywhere).
                    let same_col =
                        hyp.iter().filter(|r| r.values()[c] == w[c]).count() as u32;
                    let in_concl = w
                        .iter()
                        .enumerate()
                        .filter(|&(i, v)| i != c && *v == w[c])
                        .count();
                    let fresh = !hyp.iter().any(|r| r.values().contains(&w[c]));
                    out.push(same_col);
                    out.push(in_concl as u32);
                    out.push(u32::from(fresh));
                }
                TdOrEgd::Egd(e) => {
                    out.push(1);
                    out.push(hyp.len() as u32);
                    out.push(profile.len() as u32);
                    out.push(shared[c]);
                    out.extend(&profile);
                    // Equality linkage, order-normalized (the equality
                    // is symmetric): same-column occurrence counts of
                    // each equated value.
                    let l =
                        hyp.iter().filter(|r| r.values()[c] == e.left()).count() as u32;
                    let r = hyp
                        .iter()
                        .filter(|row| row.values()[c] == e.right())
                        .count() as u32;
                    out.push(l.min(r));
                    out.push(l.max(r));
                }
            }
            out
        })
        .collect()
}

/// What follows the hypothesis rows in a dependency encoding.
enum Tail<'a> {
    /// A td's conclusion row (may contain existential values).
    Row(&'a Tuple),
    /// An egd's equated pair (order-normalized: the equality is symmetric).
    Pair(Value, Value),
}

/// Canonical encoding of one dependency, invariant under variable renaming
/// and hypothesis-row reordering (columns read in submitted order).
pub fn dep_key(dep: &TdOrEgd) -> Vec<u32> {
    let width = match dep {
        TdOrEgd::Td(t) => t.universe().width(),
        TdOrEgd::Egd(e) => e.universe().width(),
    };
    let identity: Vec<u16> = (0..width as u16).collect();
    dep_key_under(dep, &identity)
}

/// As [`dep_key`] but reading columns through `perm` (canonical position
/// `i` reads submitted column `perm[i]`) — the per-dependency piece of the
/// query-wide column-permutation normalization.
fn dep_key_under(dep: &TdOrEgd, perm: &[u16]) -> Vec<u32> {
    match dep {
        TdOrEgd::Td(t) => {
            let mut out = vec![TAG_TD, t.hypothesis().len() as u32];
            out.extend(canonical_rows(t.hypothesis(), &Tail::Row(t.conclusion()), perm));
            out
        }
        TdOrEgd::Egd(e) => {
            let mut out = vec![TAG_EGD, e.hypothesis().len() as u32];
            out.extend(canonical_rows(
                e.hypothesis(),
                &Tail::Pair(e.left(), e.right()),
                perm,
            ));
            out
        }
    }
}

/// Encodes `row` (read through `perm`) under `numbering`, assigning
/// provisional ids (starting at `numbering.len()`) to unseen values in
/// canonical column order. Returns the encoded tuple and the newly seen
/// values in assignment order.
fn encode_row(row: &Tuple, numbering: &FxHashMap<Value, u32>, perm: &[u16]) -> (Vec<u32>, Vec<Value>) {
    let vals = row.values();
    let mut enc = Vec::with_capacity(perm.len());
    let mut fresh: Vec<Value> = Vec::new();
    for &c in perm {
        let v = &vals[c as usize];
        if let Some(&id) = numbering.get(v) {
            enc.push(id);
        } else if let Some(pos) = fresh.iter().position(|f| f == v) {
            enc.push((numbering.len() + pos) as u32);
        } else {
            enc.push((numbering.len() + fresh.len()) as u32);
            fresh.push(*v);
        }
    }
    (enc, fresh)
}

/// Appends the tail encoding under (a copy of) `numbering`.
fn encode_tail(tail: &Tail<'_>, numbering: &FxHashMap<Value, u32>, perm: &[u16]) -> Vec<u32> {
    match tail {
        Tail::Row(conclusion) => encode_row(conclusion, numbering, perm).0,
        Tail::Pair(l, r) => {
            let li = numbering[l];
            let ri = numbering[r];
            vec![li.min(ri), li.max(ri)]
        }
    }
}

/// The lexicographically minimal encoding of `rows ++ tail` over all row
/// orders, or the identity-order encoding when the search would blow up.
fn canonical_rows(rows: &[Tuple], tail: &Tail<'_>, perm: &[u16]) -> Vec<u32> {
    if rows.len() > ROW_CAP {
        return identity_encoding(rows, tail, perm);
    }
    let mut search = Search {
        rows,
        tail,
        perm,
        best: None,
        leaves: 0,
        aborted: false,
    };
    let mut used = vec![false; rows.len()];
    let mut numbering = FxHashMap::default();
    let mut acc = Vec::new();
    search.dfs(&mut used, &mut numbering, &mut acc);
    if search.aborted {
        return identity_encoding(rows, tail, perm);
    }
    search.best.expect("nonempty hypothesis yields a best order")
}

/// Encoding in the submitted row order (renaming-invariant only).
fn identity_encoding(rows: &[Tuple], tail: &Tail<'_>, perm: &[u16]) -> Vec<u32> {
    let mut numbering = FxHashMap::default();
    let mut out = Vec::new();
    for row in rows {
        let (enc, fresh) = encode_row(row, &numbering, perm);
        for v in fresh {
            let id = numbering.len() as u32;
            numbering.insert(v, id);
        }
        out.extend(enc);
    }
    out.extend(encode_tail(tail, &numbering, perm));
    out
}

struct Search<'a> {
    rows: &'a [Tuple],
    tail: &'a Tail<'a>,
    perm: &'a [u16],
    best: Option<Vec<u32>>,
    leaves: usize,
    aborted: bool,
}

impl Search<'_> {
    /// Backtracking minimal-order search. At every level only the rows
    /// whose encoded tuple is lexicographically minimal under the current
    /// numbering can extend a minimal prefix (encodings have fixed width,
    /// so prefix dominance is exact); ties branch because they bind
    /// different values.
    fn dfs(
        &mut self,
        used: &mut [bool],
        numbering: &mut FxHashMap<Value, u32>,
        acc: &mut Vec<u32>,
    ) {
        if self.aborted {
            return;
        }
        if acc.len() == self.rows.len() * self.rows.first().map_or(0, Tuple::width) {
            self.leaves += 1;
            if self.leaves > LEAF_CAP {
                self.aborted = true;
                return;
            }
            let mut candidate = acc.to_vec();
            candidate.extend(encode_tail(self.tail, numbering, self.perm));
            if self.best.as_ref().is_none_or(|b| candidate < *b) {
                self.best = Some(candidate);
            }
            return;
        }
        // Encode every unused row once, keep the minimal encoded tuple.
        let candidates: Vec<(usize, Vec<u32>, Vec<Value>)> = self
            .rows
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .map(|(i, row)| {
                let (enc, fresh) = encode_row(row, numbering, self.perm);
                (i, enc, fresh)
            })
            .collect();
        let min_enc = candidates
            .iter()
            .map(|(_, enc, _)| enc)
            .min()
            .expect("unused row exists below full depth")
            .clone();
        for (i, enc, fresh) in candidates {
            if enc != min_enc {
                continue;
            }
            used[i] = true;
            for v in &fresh {
                let id = numbering.len() as u32;
                numbering.insert(*v, id);
            }
            let mark = acc.len();
            acc.extend(&enc);
            self.dfs(used, numbering, acc);
            acc.truncate(mark);
            for v in &fresh {
                numbering.remove(v);
            }
            used[i] = false;
            if self.aborted {
                return;
            }
        }
    }
}

// ──────────────────── Σ-group identity and decoding ────────────────────
//
// Σ-group shared saturation keys jobs on (canonical Σ, canonical goal
// hypothesis): every member of a group poses an implication question over
// the *same* seed tableau under the *same* Σ, so one saturation chase of
// that seed answers all of them — a derivation certificate for any member
// whose goal becomes derivable, and (at the terminal fixpoint) a finite
// universal model refuting every member whose goal did not. Unlike the
// cache key, the column permutation here is computed from Σ alone, so
// same-Σ members with differently shaped goals still land in one group.
// The encodings are the same lossless `[tag, nrows, rows…, tail]` streams
// the cache uses, which is what makes decoding into a fresh shared value
// space possible at all.

use typedtd_dependencies::{Egd, Td};
use typedtd_relational::AttrId;

/// Identity of one Σ-group: canonical Σ under the Σ-only column
/// permutation, plus the canonical goal-hypothesis tableau. Equal keys
/// mean "same Σ and same seed tableau up to renaming, row order, Σ order,
/// and a uniform column permutation" — exactly the equivalence under
/// which one shared saturation soundly serves every member.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroupKey {
    width: u16,
    typed: bool,
    sigma: Vec<Vec<u32>>,
    hyp: Vec<u32>,
}

/// One query's Σ-group membership: the group identity plus the member
/// goal's full canonical encoding under the group permutation (decoded
/// into the group's value space by [`GoalDecoder::decode_goal`]).
pub struct GroupQuery {
    /// The group this query belongs to.
    pub key: GroupKey,
    /// The member goal's canonical encoding under the group permutation.
    pub goal: Vec<u32>,
}

/// Computes `(sigma, goal)`'s Σ-group membership. The column permutation
/// is derived from Σ's signatures alone (never the goal's), so members
/// with different goal shapes over one Σ agree on it. `None` only for
/// degenerate inputs (zero-width universes).
pub fn group_query(sigma: &[TdOrEgd], goal: &TdOrEgd) -> Option<GroupQuery> {
    let universe = match goal {
        TdOrEgd::Td(t) => t.universe().clone(),
        TdOrEgd::Egd(e) => e.universe().clone(),
    };
    let width = universe.width();
    if width == 0 {
        return None;
    }
    let perm = sigma_column_order(sigma, width);
    let mut sigma_keys: Vec<Vec<u32>> = sigma.iter().map(|d| dep_key_under(d, &perm)).collect();
    sigma_keys.sort_unstable();
    sigma_keys.dedup();
    let goal_key = dep_key_under(goal, &perm);
    let nrows = *goal_key.get(1)? as usize;
    let hyp = goal_key.get(2..2 + nrows.checked_mul(width)?)?.to_vec();
    Some(GroupQuery {
        key: GroupKey {
            width: width as u16,
            typed: universe.is_typed(),
            sigma: sigma_keys,
            hyp,
        },
        goal: goal_key,
    })
}

/// The canonical column order of Σ alone: like `column_order` but with no
/// goal contribution, so every member of a Σ-group computes the same
/// permutation regardless of its goal's shape.
fn sigma_column_order(sigma: &[TdOrEgd], width: usize) -> Vec<u16> {
    let mut order: Vec<u16> = (0..width as u16).collect();
    if !(2..=COL_CAP).contains(&width) {
        return order;
    }
    let sigma_descs: Vec<Vec<Vec<u32>>> =
        sigma.iter().map(|d| dep_col_descs(d, width)).collect();
    let sigs: Vec<Vec<u32>> = (0..width)
        .map(|c| {
            let mut deps: Vec<&Vec<u32>> = sigma_descs.iter().map(|d| &d[c]).collect();
            deps.sort_unstable();
            let mut sig = Vec::new();
            for d in deps {
                sig.extend(d.iter());
                sig.push(u32::MAX);
            }
            sig
        })
        .collect();
    order.sort_by(|&a, &b| sigs[a as usize].cmp(&sigs[b as usize]).then(a.cmp(&b)));
    order
}

/// Everything one shared saturation needs, decoded from a [`GroupKey`]
/// into a fresh canonical value space: Σ, the shared seed tableau, the
/// pool they live in, and the [`GoalDecoder`] that maps member goal
/// encodings into the same space.
pub struct DecodedGroup {
    /// Σ, decoded (each dependency over its own variable space).
    pub sigma: Vec<TdOrEgd>,
    /// The shared seed tableau (every member's goal hypothesis).
    pub seed: Relation,
    /// The pool the decoded values were minted from.
    pub pool: ValuePool,
    /// Decodes member goals into the seed's value space.
    pub decoder: GoalDecoder,
}

/// Decodes member goal encodings into a group's canonical value space:
/// hypothesis ids resolve to the shared seed values, conclusion
/// existentials mint goal-local fresh values from the (chase-owned) pool.
pub struct GoalDecoder {
    universe: std::sync::Arc<Universe>,
    width: usize,
    /// Canonical hypothesis id → shared seed value.
    map: FxHashMap<u32, Value>,
}

impl GroupKey {
    /// Decodes the group into a fresh canonical value space. `None` on a
    /// malformed encoding (impossible for keys built by [`group_query`],
    /// but decoding stays defensive rather than panicking).
    pub fn decode(&self) -> Option<DecodedGroup> {
        let width = self.width as usize;
        if width == 0 || self.hyp.is_empty() || !self.hyp.len().is_multiple_of(width) {
            return None;
        }
        let names: Vec<String> = (0..width).map(|c| format!("c{c}")).collect();
        let universe = if self.typed {
            Universe::typed(names)
        } else {
            Universe::untyped(names)
        };
        let mut pool = ValuePool::new(universe.clone());
        // Each Σ dependency's variables are quantified per dependency, so
        // each decodes over its own id space (distinct name prefixes keep
        // the minted values apart).
        let mut sigma = Vec::with_capacity(self.sigma.len());
        for (di, words) in self.sigma.iter().enumerate() {
            let mut map = FxHashMap::default();
            sigma.push(decode_dep(
                words,
                &universe,
                &mut pool,
                &mut map,
                &format!("s{di}_"),
            )?);
        }
        // The shared seed tableau; its id → value map is what member goal
        // decoding resolves hypothesis ids through.
        let mut map = FxHashMap::default();
        let mut seed = Relation::new(universe.clone());
        for row in self.hyp.chunks_exact(width) {
            seed.insert(decode_row(row, &mut pool, &mut map, "g"));
        }
        Some(DecodedGroup {
            sigma,
            seed,
            pool,
            decoder: GoalDecoder {
                universe,
                width,
                map,
            },
        })
    }
}

impl GoalDecoder {
    /// Decodes one member goal (a canonical dependency encoding whose
    /// hypothesis matches the group's seed tableau) into the group's
    /// value space. Hypothesis ids must resolve through the shared map;
    /// a td conclusion may additionally mint goal-local existentials from
    /// `pool` — which must be the *chase's* pool ([`super::service`]
    /// passes `ChaseTask::pool_mut`), so existentials can never collide
    /// with the nulls the saturation mints. `None` if the encoding does
    /// not belong to this group.
    pub fn decode_goal(&self, words: &[u32], pool: &mut ValuePool) -> Option<TdOrEgd> {
        let width = self.width;
        let tag = *words.first()?;
        let nrows = *words.get(1)? as usize;
        let body = words.get(2..)?;
        let rows_len = nrows.checked_mul(width)?;
        if nrows == 0 || body.len() < rows_len {
            return None;
        }
        let hyp: Vec<Tuple> = body[..rows_len]
            .chunks_exact(width)
            .map(|row| {
                row.iter()
                    .map(|id| self.map.get(id).copied())
                    .collect::<Option<Vec<Value>>>()
                    .map(Tuple::new)
            })
            .collect::<Option<_>>()?;
        let tail = &body[rows_len..];
        match tag {
            t if t == TAG_TD => {
                if tail.len() != width {
                    return None;
                }
                // Conclusion: hypothesis ids resolve shared; fresh ids
                // mint goal-local values (repeats within the conclusion
                // share one mint via the name-keyed pool).
                let w = Tuple::new(
                    tail.iter()
                        .enumerate()
                        .map(|(c, id)| match self.map.get(id) {
                            Some(v) => *v,
                            None => pool.for_attr(AttrId(c as u16), &format!("gx{id}")),
                        })
                        .collect(),
                );
                Some(TdOrEgd::Td(Td::new(self.universe.clone(), w, hyp)))
            }
            t if t == TAG_EGD => {
                if tail.len() != 2 {
                    return None;
                }
                let l = *self.map.get(&tail[0])?;
                let r = *self.map.get(&tail[1])?;
                Some(TdOrEgd::Egd(Egd::new(self.universe.clone(), l, r, hyp)))
            }
            _ => None,
        }
    }
}

/// Decodes one encoded row, minting values at first occurrence (typed
/// universes sort the mint by the first column the id appears in).
fn decode_row(
    words: &[u32],
    pool: &mut ValuePool,
    map: &mut FxHashMap<u32, Value>,
    prefix: &str,
) -> Tuple {
    Tuple::new(
        words
            .iter()
            .enumerate()
            .map(|(c, id)| {
                *map.entry(*id)
                    .or_insert_with(|| pool.for_attr(AttrId(c as u16), &format!("{prefix}{id}")))
            })
            .collect(),
    )
}

/// Decodes one canonical dependency encoding over its own id space.
fn decode_dep(
    words: &[u32],
    universe: &std::sync::Arc<Universe>,
    pool: &mut ValuePool,
    map: &mut FxHashMap<u32, Value>,
    prefix: &str,
) -> Option<TdOrEgd> {
    let width = universe.width();
    let tag = *words.first()?;
    let nrows = *words.get(1)? as usize;
    let body = words.get(2..)?;
    let rows_len = nrows.checked_mul(width)?;
    if nrows == 0 || body.len() < rows_len {
        return None;
    }
    let hyp: Vec<Tuple> = body[..rows_len]
        .chunks_exact(width)
        .map(|row| decode_row(row, pool, map, prefix))
        .collect();
    let tail = &body[rows_len..];
    match tag {
        t if t == TAG_TD => {
            if tail.len() != width {
                return None;
            }
            let w = decode_row(tail, pool, map, prefix);
            Some(TdOrEgd::Td(Td::new(universe.clone(), w, hyp)))
        }
        t if t == TAG_EGD => {
            if tail.len() != 2 {
                return None;
            }
            // The encoder only emits equated values that occur in the
            // hypothesis, so both ids must already be mapped.
            let l = *map.get(&tail[0])?;
            let r = *map.get(&tail[1])?;
            Some(TdOrEgd::Egd(Egd::new(universe.clone(), l, r, hyp)))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use typedtd_dependencies::{egd_from_names, td_from_names};
    use typedtd_relational::{isomorphic, Universe, ValuePool};

    fn setup() -> (Arc<Universe>, ValuePool) {
        let u = Universe::untyped_abc();
        let p = ValuePool::new(u.clone());
        (u, p)
    }

    #[test]
    fn renaming_is_invisible() {
        let (u, mut p) = setup();
        let a = td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        let b = td_from_names(
            &u,
            &mut p,
            &[&["q", "r1", "s1"], &["q", "r2", "s2"]],
            &["q", "r1", "s2"],
        );
        assert_eq!(dep_key(&TdOrEgd::Td(a)), dep_key(&TdOrEgd::Td(b)));
    }

    #[test]
    fn row_reordering_is_invisible() {
        let (u, mut p) = setup();
        let a = td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        let b = td_from_names(
            &u,
            &mut p,
            &[&["x", "y2", "z2"], &["x", "y1", "z1"]],
            &["x", "y1", "z2"],
        );
        // Under the swapped row order the conclusion reads differently, but
        // the canonical order restores a single encoding.
        assert_eq!(dep_key(&TdOrEgd::Td(a)), dep_key(&TdOrEgd::Td(b)));
    }

    #[test]
    fn structure_differences_are_visible() {
        let (u, mut p) = setup();
        let mvd = td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        let trivial = td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z1"],
        );
        assert_ne!(dep_key(&TdOrEgd::Td(mvd)), dep_key(&TdOrEgd::Td(trivial)));
    }

    #[test]
    fn egd_equality_is_symmetric() {
        let (u, mut p) = setup();
        let a = egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y1"),
            ("B'", "y2"),
        );
        let b = egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y2"),
            ("B'", "y1"),
        );
        assert_eq!(dep_key(&TdOrEgd::Egd(a)), dep_key(&TdOrEgd::Egd(b)));
    }

    #[test]
    fn sigma_order_and_duplicates_are_invisible() {
        let (u, mut p) = setup();
        let t1 = TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&["x", "y", "z"]],
            &["x", "y", "w"],
        ));
        let t2 = TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&["x", "y", "z"]],
            &["w", "y", "z"],
        ));
        let goal = t1.clone();
        let k1 = query_key(&[t1.clone(), t2.clone()], &goal);
        let k2 = query_key(&[t2.clone(), t1.clone(), t2.clone()], &goal);
        assert_eq!(k1, k2);
    }

    #[test]
    fn typing_discipline_is_part_of_the_key() {
        let (u, mut p) = setup();
        let ut = Universe::typed(vec!["A", "B", "C"]);
        let mut pt = ValuePool::new(ut.clone());
        let a = td_from_names(&u, &mut p, &[&["x", "y", "z"]], &["x", "y", "w"]);
        let b = td_from_names(&ut, &mut pt, &[&["x", "y", "z"]], &["x", "y", "w"]);
        assert_ne!(
            query_key(&[], &TdOrEgd::Td(a)),
            query_key(&[], &TdOrEgd::Td(b))
        );
    }

    #[test]
    fn equal_keys_imply_isomorphic_hypotheses() {
        // The independent cross-check against the isomorphism machinery:
        // whenever two dependency keys agree, the hypothesis tableaux must
        // be isomorphic as relations.
        let (u, mut p) = setup();
        let mk = |p: &mut ValuePool, rows: &[&[&str]], w: &[&str]| {
            TdOrEgd::Td(td_from_names(&u, p, rows, w))
        };
        let deps = [
            mk(
                &mut p,
                &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
                &["x", "y1", "z2"],
            ),
            mk(
                &mut p,
                &[&["a", "b2", "c2"], &["a", "b1", "c1"]],
                &["a", "b1", "c1"],
            ),
            mk(&mut p, &[&["x", "x", "z"]], &["x", "x", "z"]),
            mk(&mut p, &[&["x", "y", "z"]], &["x", "y", "z"]),
        ];
        for (i, d1) in deps.iter().enumerate() {
            for d2 in &deps[i..] {
                if dep_key(d1) == dep_key(d2) {
                    let (TdOrEgd::Td(t1), TdOrEgd::Td(t2)) = (d1, d2) else {
                        unreachable!()
                    };
                    assert!(
                        isomorphic(&t1.hypothesis_relation(), &t2.hypothesis_relation()),
                        "equal keys must mean isomorphic hypothesis tableaux"
                    );
                }
            }
        }
    }

    /// Applies one column permutation to every dependency of a query:
    /// the uniform attribute relabeling the key must normalize away.
    fn permute_query(
        u: &Arc<Universe>,
        _pool: &mut ValuePool,
        sigma: &[TdOrEgd],
        goal: &TdOrEgd,
        perm: &[usize],
    ) -> (Vec<TdOrEgd>, TdOrEgd) {
        let permute_tuple =
            |t: &Tuple| Tuple::new(perm.iter().map(|&c| t.values()[c]).collect());
        let permute_dep = |d: &TdOrEgd| match d {
            TdOrEgd::Td(t) => {
                let hyp: Vec<Tuple> = t.hypothesis().iter().map(&permute_tuple).collect();
                TdOrEgd::Td(typedtd_dependencies::Td::new(
                    u.clone(),
                    permute_tuple(t.conclusion()),
                    hyp,
                ))
            }
            TdOrEgd::Egd(e) => {
                let hyp: Vec<Tuple> = e.hypothesis().iter().map(&permute_tuple).collect();
                TdOrEgd::Egd(typedtd_dependencies::Egd::new(
                    u.clone(),
                    e.left(),
                    e.right(),
                    hyp,
                ))
            }
        };
        (
            sigma.iter().map(permute_dep).collect(),
            permute_dep(goal),
        )
    }

    #[test]
    fn uniform_column_permutations_are_invisible() {
        let (u, mut p) = setup();
        let mvd = TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        ));
        let extra = TdOrEgd::Td(td_from_names(&u, &mut p, &[&["q", "r", "r"]], &["q", "r", "r"]));
        let goal = TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z1"],
        ));
        let sigma = vec![mvd, extra];
        let base = query_key(&sigma, &goal);
        // Every permutation of the three columns must key identically.
        for perm in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            let (ps, pg) = permute_query(&u, &mut p, &sigma, &goal, &perm);
            assert_eq!(
                query_key(&ps, &pg),
                base,
                "column permutation {perm:?} must be normalized away"
            );
        }
    }
    #[test]
    fn nonuniform_column_changes_stay_visible() {
        // Permuting the goal's columns WITHOUT permuting Σ poses a
        // different implication problem — the keys must differ (the
        // normalization is query-wide, not per-dependency). Here:
        // `A' → B' ⊨ A' → B'` (true) versus `A' → B' ⊨ A' → C'` (false).
        let (u, mut p) = setup();
        let fd_b = TdOrEgd::Egd(egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y1"),
            ("B'", "y2"),
        ));
        let sigma = vec![fd_b.clone()];
        // Swap the goal's B'/C' columns only: the equated pair now lives
        // in column C'.
        let (_, goal_swapped) = permute_query(&u, &mut p, &sigma, &fd_b, &[0, 2, 1]);
        assert_ne!(
            query_key(&sigma, &fd_b),
            query_key(&sigma, &goal_swapped),
            "goal-only column swap changes the problem and must change the key"
        );
    }

    #[test]
    fn permuted_keys_stay_sound_on_near_collisions() {
        // Structurally different queries that are symmetric in two
        // columns: the tie-enumeration path must still keep them apart.
        let (u, mut p) = setup();
        let mvd = TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        ));
        let trivial = TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z1"],
        ));
        assert_ne!(
            query_key(&[], &mvd),
            query_key(&[], &trivial),
            "distinct structures must not collide under column normalization"
        );
    }

    #[test]
    fn wide_universes_fall_back_to_submitted_column_order() {
        let names: Vec<String> = (0..COL_CAP + 2).map(|i| format!("W{i}")).collect();
        let u = Universe::untyped(names);
        let mut p = ValuePool::new(u.clone());
        let row: Vec<String> = (0..COL_CAP + 2).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = row.iter().map(String::as_str).collect();
        let td = TdOrEgd::Td(td_from_names(&u, &mut p, &[&refs], &refs));
        let k1 = query_key(&[], &td);
        let k2 = query_key(&[], &td);
        assert_eq!(k1, k2, "fallback keys stay deterministic");
        let parts = query_parts(&[], &td);
        assert_eq!(
            parts.perm,
            (0..(COL_CAP + 2) as u16).collect::<Vec<_>>(),
            "beyond COL_CAP the permutation is the identity"
        );
    }

    #[test]
    fn query_key_round_trips_through_bytes() {
        let (u, mut p) = setup();
        let mvd = TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        ));
        let fd = TdOrEgd::Egd(egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y1"),
            ("B'", "y2"),
        ));
        let key = query_key(&[mvd, fd.clone()], &fd);
        let mut bytes = Vec::new();
        key.encode_into(&mut bytes);
        let (back, used) = QueryKey::decode(&bytes).expect("well-formed encoding");
        assert_eq!(used, bytes.len(), "decode must consume exactly what encode wrote");
        assert_eq!(back, key);
        // Truncations never decode (and never panic).
        for cut in 0..bytes.len() {
            assert!(QueryKey::decode(&bytes[..cut]).is_none());
        }
    }

    #[test]
    fn witness_relation_is_isomorphic_to_the_permuted_hypothesis() {
        let (u, mut p) = setup();
        let mvd = TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        ));
        let parts = query_parts(std::slice::from_ref(&mvd), &mvd);
        let rebuilt = parts.key.witness_relation().expect("well-formed goal encoding");
        let original = permute_relation(&crate::cache::goal_hypothesis(&mvd), &parts.perm);
        assert!(
            crate::cache::witness_match(&rebuilt, &original),
            "replayed witness must pass the same verified-hit check a live witness would"
        );
        // And for a typed query, whose witness lives over a typed universe.
        let ut = Universe::typed(vec!["A", "B", "C"]);
        let mut pt = ValuePool::new(ut.clone());
        let tfd = TdOrEgd::Egd(egd_from_names(
            &ut,
            &mut pt,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B", "y1"),
            ("B", "y2"),
        ));
        let tparts = query_parts(&[], &tfd);
        let trebuilt = tparts.key.witness_relation().expect("typed goal encoding");
        let toriginal = permute_relation(&crate::cache::goal_hypothesis(&tfd), &tparts.perm);
        assert!(crate::cache::witness_match(&trebuilt, &toriginal));
    }

    #[test]
    fn oversized_tableaux_still_get_deterministic_keys() {
        let (u, mut p) = setup();
        let names: Vec<Vec<String>> = (0..ROW_CAP + 2)
            .map(|i| vec![format!("a{i}"), format!("b{i}"), format!("c{i}")])
            .collect();
        let rows: Vec<Vec<&str>> = names
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let row_slices: Vec<&[&str]> = rows.iter().map(Vec::as_slice).collect();
        let td = td_from_names(&u, &mut p, &row_slices, &["a0", "b0", "c0"]);
        let k1 = dep_key(&TdOrEgd::Td(td.clone()));
        let k2 = dep_key(&TdOrEgd::Td(td));
        assert_eq!(k1, k2);
    }

    /// The standard shared-Σ fixture: mvd + fd over untyped ABC, three
    /// member goals over one hypothesis tableau (a td and two egds).
    fn group_fixture() -> (Vec<TdOrEgd>, Vec<TdOrEgd>) {
        let (u, mut p) = setup();
        let rows: &[&[&str]] = &[&["x", "y1", "z1"], &["x", "y2", "z2"]];
        let mvd = TdOrEgd::Td(td_from_names(&u, &mut p, rows, &["x", "y1", "z2"]));
        let fd = TdOrEgd::Egd(egd_from_names(&u, &mut p, rows, ("B'", "y1"), ("B'", "y2")));
        let sigma = vec![mvd.clone(), fd];
        let goals = vec![
            mvd,
            TdOrEgd::Egd(egd_from_names(&u, &mut p, rows, ("B'", "y1"), ("B'", "y2"))),
            TdOrEgd::Egd(egd_from_names(&u, &mut p, rows, ("C'", "z1"), ("C'", "z2"))),
        ];
        (sigma, goals)
    }

    #[test]
    fn same_sigma_same_hypothesis_goals_share_a_group() {
        let (sigma, goals) = group_fixture();
        let keys: Vec<GroupKey> = goals
            .iter()
            .map(|g| group_query(&sigma, g).expect("groupable").key)
            .collect();
        // A td goal and two egd goals over one hypothesis: one group.
        assert_eq!(keys[0], keys[1]);
        assert_eq!(keys[1], keys[2]);
        // A different Σ keys a different group.
        let (u, mut p) = setup();
        let other = TdOrEgd::Td(td_from_names(&u, &mut p, &[&["a", "b", "c"]], &["a", "b", "w"]));
        assert_ne!(group_query(&[other], &goals[0]).unwrap().key, keys[0]);
    }

    #[test]
    fn renamed_reordered_members_share_a_group() {
        let (sigma, goals) = group_fixture();
        let base = group_query(&sigma, &goals[1]).unwrap();
        // Same member, renamed and with its hypothesis rows swapped.
        let (u, mut p) = setup();
        let renamed = TdOrEgd::Egd(egd_from_names(
            &u,
            &mut p,
            &[&["q", "r2", "s2"], &["q", "r1", "s1"]],
            ("B'", "r2"),
            ("B'", "r1"),
        ));
        let rq = group_query(&sigma, &renamed).unwrap();
        assert_eq!(rq.key, base.key);
        assert_eq!(rq.goal, base.goal);
    }

    #[test]
    fn decoded_group_saturation_answers_every_member() {
        use typedtd_chase::{ChaseConfig, ChaseOutcome, ChaseTask};
        let (sigma, goals) = group_fixture();
        let queries: Vec<GroupQuery> =
            goals.iter().map(|g| group_query(&sigma, g).unwrap()).collect();
        let decoded = queries[0].key.decode().expect("well-formed group key");
        assert_eq!(decoded.sigma.len(), 2, "Σ decodes dependency-for-dependency");
        assert_eq!(decoded.seed.len(), 2, "seed is the two-row hypothesis");
        let mut task = ChaseTask::saturation(
            &decoded.seed,
            decoded.sigma,
            decoded.pool,
            ChaseConfig::default(),
        );
        assert_eq!(task.run_to_completion(), ChaseOutcome::NotImplied, "terminal");
        // Member 0 (the mvd td, an element of Σ) and member 1 (the fd's
        // own egd) are derivable; member 2 (C'-equality) is refuted by
        // the terminal instance.
        let expect = [true, true, false];
        for (q, want) in queries.iter().zip(expect) {
            let goal = decoded
                .decoder
                .decode_goal(&q.goal, task.pool_mut())
                .expect("member goal decodes into the group space");
            assert_eq!(task.goal_derivable(&goal), want);
        }
    }
}
