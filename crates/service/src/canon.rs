//! Canonical, isomorphism-invariant keys for implication queries.
//!
//! Two queries `(Σ, σ)` and `(Σ', σ')` pose the *same* implication problem
//! whenever they differ only by a renaming of tableau variables, a
//! reordering of hypothesis rows, or a reordering (or duplication) of the
//! dependencies of Σ — the chase outcome is invariant under all three (the
//! paper's constructions are all "up to renaming"). A production service
//! sees vast numbers of such structurally identical queries, so the answer
//! cache keys on a **canonical form**:
//!
//! * each dependency is encoded as a token stream whose variables are
//!   numbered by first occurrence under the *lexicographically minimal*
//!   hypothesis-row order (a backtracking search with prefix pruning, the
//!   same shape as the row-matching search in
//!   `typedtd_relational::isomorphism` — both explore row pairings and cut
//!   on the induced value bijection);
//! * Σ is the *sorted, deduplicated set* of its dependencies' encodings;
//! * the universe contributes only its width and typing discipline —
//!   attribute *names* never affect the answer.
//!
//! Equal keys therefore imply isomorphic queries, and renamed/reordered
//! resubmissions hit the cache. The converse direction is guarded for
//! pathological tableaux: when the row-order search would blow up (more
//! rows than [`ROW_CAP`], or more than [`LEAF_CAP`] candidate orders), the
//! encoder falls back to the submitted row order — still deterministic and
//! still *sound* (a false key match is impossible because the encoding is
//! injective up to renaming), it merely forfeits hits for that dependency.
//! The `isomorphic` machinery remains available as an independent
//! cross-check of key collisions (see `ServiceConfig::verify_cache_hits`
//! and this module's tests).

use typedtd_dependencies::TdOrEgd;
use typedtd_relational::{FxHashMap, Tuple, Value};

/// Hypothesis-row count above which row-order canonicalization is skipped.
pub const ROW_CAP: usize = 8;

/// Bound on complete row orders examined before falling back.
pub const LEAF_CAP: usize = 512;

const TAG_TD: u32 = u32::MAX;
const TAG_EGD: u32 = u32::MAX - 1;

/// The canonical key of one query `(Σ, σ)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QueryKey {
    /// Universe width (attribute names are irrelevant to the answer).
    width: u16,
    /// Domain discipline (typedness changes which embeddings exist).
    typed: bool,
    /// Sorted, deduplicated canonical encodings of Σ.
    sigma: Vec<Vec<u32>>,
    /// Canonical encoding of the goal.
    goal: Vec<u32>,
}

/// Computes the canonical key of `(sigma, goal)`.
pub fn query_key(sigma: &[TdOrEgd], goal: &TdOrEgd) -> QueryKey {
    query_key_and_sigma_keys(sigma, goal).0
}

/// As [`query_key`], but also returns each Σ dependency's canonical
/// encoding, aligned with the submitted order — so a scheduler can dedup
/// Σ without canonicalizing every dependency a second time.
pub fn query_key_and_sigma_keys(sigma: &[TdOrEgd], goal: &TdOrEgd) -> (QueryKey, Vec<Vec<u32>>) {
    let parts = query_parts(sigma, goal);
    (parts.key, parts.sigma_keys)
}

/// Everything `submit` needs from one canonicalization pass.
pub struct QueryParts {
    /// The canonical key of the whole query.
    pub key: QueryKey,
    /// Each Σ dependency's canonical encoding, aligned with the submitted
    /// order (for Σ dedup without a second canonicalization).
    pub sigma_keys: Vec<Vec<u32>>,
    /// The goal's canonical encoding (for the goal-in-Σ fast path:
    /// `sigma_keys.contains(&goal_key)` means `σ ∈ Σ` up to isomorphism,
    /// so `Σ ⊨ σ` and `Σ ⊨_f σ` hold by reflexivity).
    pub goal_key: Vec<u32>,
}

/// Canonicalizes a query once, returning the key plus the per-dependency
/// encodings of Σ and of the goal.
pub fn query_parts(sigma: &[TdOrEgd], goal: &TdOrEgd) -> QueryParts {
    let universe = match goal {
        TdOrEgd::Td(t) => t.universe().clone(),
        TdOrEgd::Egd(e) => e.universe().clone(),
    };
    let dep_keys: Vec<Vec<u32>> = sigma.iter().map(dep_key).collect();
    let goal_key = dep_key(goal);
    let mut sigma_keys = dep_keys.clone();
    sigma_keys.sort_unstable();
    sigma_keys.dedup();
    let key = QueryKey {
        width: universe.width() as u16,
        typed: universe.is_typed(),
        sigma: sigma_keys,
        goal: goal_key.clone(),
    };
    QueryParts {
        key,
        sigma_keys: dep_keys,
        goal_key,
    }
}

/// What follows the hypothesis rows in a dependency encoding.
enum Tail<'a> {
    /// A td's conclusion row (may contain existential values).
    Row(&'a Tuple),
    /// An egd's equated pair (order-normalized: the equality is symmetric).
    Pair(Value, Value),
}

/// Canonical encoding of one dependency, invariant under variable renaming
/// and hypothesis-row reordering.
pub fn dep_key(dep: &TdOrEgd) -> Vec<u32> {
    match dep {
        TdOrEgd::Td(t) => {
            let mut out = vec![TAG_TD, t.hypothesis().len() as u32];
            out.extend(canonical_rows(t.hypothesis(), &Tail::Row(t.conclusion())));
            out
        }
        TdOrEgd::Egd(e) => {
            let mut out = vec![TAG_EGD, e.hypothesis().len() as u32];
            out.extend(canonical_rows(e.hypothesis(), &Tail::Pair(e.left(), e.right())));
            out
        }
    }
}

/// Encodes `row` under `numbering`, assigning provisional ids (starting at
/// `numbering.len()`) to unseen values in column order. Returns the encoded
/// tuple and the newly seen values in assignment order.
fn encode_row(row: &Tuple, numbering: &FxHashMap<Value, u32>) -> (Vec<u32>, Vec<Value>) {
    let mut enc = Vec::with_capacity(row.width());
    let mut fresh: Vec<Value> = Vec::new();
    for v in row.values() {
        if let Some(&id) = numbering.get(v) {
            enc.push(id);
        } else if let Some(pos) = fresh.iter().position(|f| f == v) {
            enc.push((numbering.len() + pos) as u32);
        } else {
            enc.push((numbering.len() + fresh.len()) as u32);
            fresh.push(*v);
        }
    }
    (enc, fresh)
}

/// Appends the tail encoding under (a copy of) `numbering`.
fn encode_tail(tail: &Tail<'_>, numbering: &FxHashMap<Value, u32>) -> Vec<u32> {
    match tail {
        Tail::Row(conclusion) => encode_row(conclusion, numbering).0,
        Tail::Pair(l, r) => {
            let li = numbering[l];
            let ri = numbering[r];
            vec![li.min(ri), li.max(ri)]
        }
    }
}

/// The lexicographically minimal encoding of `rows ++ tail` over all row
/// orders, or the identity-order encoding when the search would blow up.
fn canonical_rows(rows: &[Tuple], tail: &Tail<'_>) -> Vec<u32> {
    if rows.len() > ROW_CAP {
        return identity_encoding(rows, tail);
    }
    let mut search = Search {
        rows,
        tail,
        best: None,
        leaves: 0,
        aborted: false,
    };
    let mut used = vec![false; rows.len()];
    let mut numbering = FxHashMap::default();
    let mut acc = Vec::new();
    search.dfs(&mut used, &mut numbering, &mut acc);
    if search.aborted {
        return identity_encoding(rows, tail);
    }
    search.best.expect("nonempty hypothesis yields a best order")
}

/// Encoding in the submitted row order (renaming-invariant only).
fn identity_encoding(rows: &[Tuple], tail: &Tail<'_>) -> Vec<u32> {
    let mut numbering = FxHashMap::default();
    let mut out = Vec::new();
    for row in rows {
        let (enc, fresh) = encode_row(row, &numbering);
        for v in fresh {
            let id = numbering.len() as u32;
            numbering.insert(v, id);
        }
        out.extend(enc);
    }
    out.extend(encode_tail(tail, &numbering));
    out
}

struct Search<'a> {
    rows: &'a [Tuple],
    tail: &'a Tail<'a>,
    best: Option<Vec<u32>>,
    leaves: usize,
    aborted: bool,
}

impl Search<'_> {
    /// Backtracking minimal-order search. At every level only the rows
    /// whose encoded tuple is lexicographically minimal under the current
    /// numbering can extend a minimal prefix (encodings have fixed width,
    /// so prefix dominance is exact); ties branch because they bind
    /// different values.
    fn dfs(
        &mut self,
        used: &mut [bool],
        numbering: &mut FxHashMap<Value, u32>,
        acc: &mut Vec<u32>,
    ) {
        if self.aborted {
            return;
        }
        if acc.len() == self.rows.len() * self.rows.first().map_or(0, Tuple::width) {
            self.leaves += 1;
            if self.leaves > LEAF_CAP {
                self.aborted = true;
                return;
            }
            let mut candidate = acc.to_vec();
            candidate.extend(encode_tail(self.tail, numbering));
            if self.best.as_ref().is_none_or(|b| candidate < *b) {
                self.best = Some(candidate);
            }
            return;
        }
        // Encode every unused row once, keep the minimal encoded tuple.
        let candidates: Vec<(usize, Vec<u32>, Vec<Value>)> = self
            .rows
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .map(|(i, row)| {
                let (enc, fresh) = encode_row(row, numbering);
                (i, enc, fresh)
            })
            .collect();
        let min_enc = candidates
            .iter()
            .map(|(_, enc, _)| enc)
            .min()
            .expect("unused row exists below full depth")
            .clone();
        for (i, enc, fresh) in candidates {
            if enc != min_enc {
                continue;
            }
            used[i] = true;
            for v in &fresh {
                let id = numbering.len() as u32;
                numbering.insert(*v, id);
            }
            let mark = acc.len();
            acc.extend(&enc);
            self.dfs(used, numbering, acc);
            acc.truncate(mark);
            for v in &fresh {
                numbering.remove(v);
            }
            used[i] = false;
            if self.aborted {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use typedtd_dependencies::{egd_from_names, td_from_names};
    use typedtd_relational::{isomorphic, Universe, ValuePool};

    fn setup() -> (Arc<Universe>, ValuePool) {
        let u = Universe::untyped_abc();
        let p = ValuePool::new(u.clone());
        (u, p)
    }

    #[test]
    fn renaming_is_invisible() {
        let (u, mut p) = setup();
        let a = td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        let b = td_from_names(
            &u,
            &mut p,
            &[&["q", "r1", "s1"], &["q", "r2", "s2"]],
            &["q", "r1", "s2"],
        );
        assert_eq!(dep_key(&TdOrEgd::Td(a)), dep_key(&TdOrEgd::Td(b)));
    }

    #[test]
    fn row_reordering_is_invisible() {
        let (u, mut p) = setup();
        let a = td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        let b = td_from_names(
            &u,
            &mut p,
            &[&["x", "y2", "z2"], &["x", "y1", "z1"]],
            &["x", "y1", "z2"],
        );
        // Under the swapped row order the conclusion reads differently, but
        // the canonical order restores a single encoding.
        assert_eq!(dep_key(&TdOrEgd::Td(a)), dep_key(&TdOrEgd::Td(b)));
    }

    #[test]
    fn structure_differences_are_visible() {
        let (u, mut p) = setup();
        let mvd = td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z2"],
        );
        let trivial = td_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            &["x", "y1", "z1"],
        );
        assert_ne!(dep_key(&TdOrEgd::Td(mvd)), dep_key(&TdOrEgd::Td(trivial)));
    }

    #[test]
    fn egd_equality_is_symmetric() {
        let (u, mut p) = setup();
        let a = egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y1"),
            ("B'", "y2"),
        );
        let b = egd_from_names(
            &u,
            &mut p,
            &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
            ("B'", "y2"),
            ("B'", "y1"),
        );
        assert_eq!(dep_key(&TdOrEgd::Egd(a)), dep_key(&TdOrEgd::Egd(b)));
    }

    #[test]
    fn sigma_order_and_duplicates_are_invisible() {
        let (u, mut p) = setup();
        let t1 = TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&["x", "y", "z"]],
            &["x", "y", "w"],
        ));
        let t2 = TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&["x", "y", "z"]],
            &["w", "y", "z"],
        ));
        let goal = t1.clone();
        let k1 = query_key(&[t1.clone(), t2.clone()], &goal);
        let k2 = query_key(&[t2.clone(), t1.clone(), t2.clone()], &goal);
        assert_eq!(k1, k2);
    }

    #[test]
    fn typing_discipline_is_part_of_the_key() {
        let (u, mut p) = setup();
        let ut = Universe::typed(vec!["A", "B", "C"]);
        let mut pt = ValuePool::new(ut.clone());
        let a = td_from_names(&u, &mut p, &[&["x", "y", "z"]], &["x", "y", "w"]);
        let b = td_from_names(&ut, &mut pt, &[&["x", "y", "z"]], &["x", "y", "w"]);
        assert_ne!(
            query_key(&[], &TdOrEgd::Td(a)),
            query_key(&[], &TdOrEgd::Td(b))
        );
    }

    #[test]
    fn equal_keys_imply_isomorphic_hypotheses() {
        // The independent cross-check against the isomorphism machinery:
        // whenever two dependency keys agree, the hypothesis tableaux must
        // be isomorphic as relations.
        let (u, mut p) = setup();
        let mk = |p: &mut ValuePool, rows: &[&[&str]], w: &[&str]| {
            TdOrEgd::Td(td_from_names(&u, p, rows, w))
        };
        let deps = [
            mk(
                &mut p,
                &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
                &["x", "y1", "z2"],
            ),
            mk(
                &mut p,
                &[&["a", "b2", "c2"], &["a", "b1", "c1"]],
                &["a", "b1", "c1"],
            ),
            mk(&mut p, &[&["x", "x", "z"]], &["x", "x", "z"]),
            mk(&mut p, &[&["x", "y", "z"]], &["x", "y", "z"]),
        ];
        for (i, d1) in deps.iter().enumerate() {
            for d2 in &deps[i..] {
                if dep_key(d1) == dep_key(d2) {
                    let (TdOrEgd::Td(t1), TdOrEgd::Td(t2)) = (d1, d2) else {
                        unreachable!()
                    };
                    assert!(
                        isomorphic(&t1.hypothesis_relation(), &t2.hypothesis_relation()),
                        "equal keys must mean isomorphic hypothesis tableaux"
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_tableaux_still_get_deterministic_keys() {
        let (u, mut p) = setup();
        let names: Vec<Vec<String>> = (0..ROW_CAP + 2)
            .map(|i| vec![format!("a{i}"), format!("b{i}"), format!("c{i}")])
            .collect();
        let rows: Vec<Vec<&str>> = names
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let row_slices: Vec<&[&str]> = rows.iter().map(Vec::as_slice).collect();
        let td = td_from_names(&u, &mut p, &row_slices, &["a0", "b0", "c0"]);
        let k1 = dep_key(&TdOrEgd::Td(td.clone()));
        let k2 = dep_key(&TdOrEgd::Td(td));
        assert_eq!(k1, k2);
    }
}
