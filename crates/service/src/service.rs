//! The concurrent implication service: a fair dovetailing scheduler over
//! resumable [`DecideTask`]s with a memoizing answer cache.
//!
//! # Dovetailing as scheduling
//!
//! The paper proves no total algorithm decides typed-td implication, so a
//! service cannot promise any single query terminates — what it *can*
//! promise is fairness: every submitted query keeps making progress no
//! matter how many divergent neighbours it has. That is exactly the
//! textbook dovetailing argument for running two semidecision procedures,
//! lifted one level: where [`typedtd_chase::decide`] dovetails the chase
//! against model search *within* one query, the scheduler here round-robins
//! fuel slices *across* queries. A query that terminates after `n` fuel
//! units is answered after at most `n` sweeps of the run queue, each sweep
//! bounded by `jobs × slice_fuel` — starvation-freedom by construction.
//!
//! # The answer cache
//!
//! Real workloads re-ask structurally identical questions (the same schema
//! constraint checked for every tenant, the same normalization query with
//! freshly minted variable names). Jobs are keyed by the canonical form of
//! `(Σ, σ)` ([`crate::canon`]); a finished job's answers are recorded under
//! its key, later submissions hit without spending any fuel, and identical
//! *in-flight* queries coalesce onto the running job instead of chasing in
//! parallel.
//!
//! # Concurrency
//!
//! With `workers > 1` each sweep fans its fuel slices out across scoped OS
//! threads (jobs own their state, so stepping distinct jobs is embarrassingly
//! parallel); completions are still recorded in submission order, keeping
//! stats and cache insertion deterministic.

use crate::cache::{AnswerCache, CachedAnswer, Probe};
use crate::canon::{query_key_and_sigma_keys, QueryKey};
use std::collections::VecDeque;
use typedtd_chase::{Answer, DecideConfig, DecideStatus, DecideTask};
use typedtd_dependencies::TdOrEgd;
use typedtd_relational::{FxHashMap, FxHashSet, Relation, ValuePool};

/// Service-wide knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Per-query decision budgets (chase + search).
    pub decide: DecideConfig,
    /// Fuel units (chase rounds / search attempts) granted to a job per
    /// scheduler sweep. Smaller slices preempt faster; larger slices
    /// amortize bookkeeping.
    pub slice_fuel: usize,
    /// Global fuel budget across all jobs; once spent, the remaining jobs
    /// are answered `Unknown` by [`ImplicationService::run_to_completion`].
    /// Checked between slices (a soft cap under `workers > 1`).
    pub global_fuel: Option<u64>,
    /// Worker threads for stepping jobs within a sweep. `1` = sequential.
    pub workers: usize,
    /// Enable the canonical answer cache (and in-flight coalescing).
    pub cache: bool,
    /// Re-verify every cache hit through the isomorphism machinery.
    pub verify_cache_hits: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            decide: DecideConfig::default(),
            slice_fuel: 8,
            global_fuel: None,
            workers: 1,
            cache: true,
            verify_cache_hits: false,
        }
    }
}

/// Handle to a submitted job.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct JobId(usize);

/// A finished job's result.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Answer for unrestricted implication `Σ ⊨ σ`.
    pub implication: Answer,
    /// Answer for finite implication `Σ ⊨_f σ`.
    pub finite_implication: Answer,
    /// A finite counterexample when either answer is `No` and this job did
    /// the work itself (cache/coalesced answers carry no certificate: the
    /// certificate's values live in the original submitter's pool).
    pub counterexample: Option<Relation>,
    /// `true` if the answers came from the cache or a coalesced leader.
    pub from_cache: bool,
    /// Fuel this job consumed (0 for cache hits).
    pub fuel_spent: u64,
}

/// Poll result for a job.
#[derive(Clone, Debug)]
pub enum JobStatus {
    /// Still in flight; keep ticking the service.
    Pending,
    /// Finished.
    Done(JobOutcome),
}

/// Aggregate service counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs finished (including cache hits and expiries).
    pub completed: u64,
    /// Submissions answered instantly from the cache.
    pub cache_hits: u64,
    /// Submissions coalesced onto an identical in-flight job.
    pub coalesced: u64,
    /// Submissions that had to run (cache enabled but cold, or disabled).
    pub cache_misses: u64,
    /// Cache key hits rejected by isomorphism verification (should be 0;
    /// a nonzero count flags a canonicalization bug).
    pub verify_rejects: u64,
    /// Jobs force-answered `Unknown` by global fuel exhaustion.
    pub expired: u64,
    /// Total fuel spent across all jobs.
    pub fuel_spent: u64,
    /// Scheduler sweeps executed.
    pub sweeps: u64,
    /// Jobs answered `Yes` (unrestricted implication).
    pub yes: u64,
    /// Jobs answered `No`.
    pub no: u64,
    /// Jobs answered `Unknown`.
    pub unknown: u64,
}

enum Slot {
    /// In flight, owned by the run queue.
    Running(Box<DecideTask>),
    /// Transiently moved out for a (possibly parallel) fuel slice.
    Stepping,
    /// Coalesced: waiting for the identical in-flight job to finish.
    Waiting { leader: usize },
    /// Finished.
    Finished(JobOutcome),
}

struct Job {
    slot: Slot,
    /// Canonical key (when caching): where this job's answers get recorded.
    key: Option<QueryKey>,
    /// Goal snapshot for cache insertion/verification.
    goal: TdOrEgd,
    fuel_spent: u64,
}

/// A multiplexing, memoizing front end over many concurrent implication
/// queries. See the module docs for the design.
pub struct ImplicationService {
    cfg: ServiceConfig,
    jobs: Vec<Job>,
    /// Round-robin run queue of job indices with `Slot::Running` state.
    queue: VecDeque<usize>,
    /// Canonical key → leader job index, for in-flight coalescing.
    inflight: FxHashMap<QueryKey, usize>,
    /// Leader job index → jobs coalesced onto it, resolved at completion
    /// (kept out of the job slots so completion is O(waiters), not O(jobs)).
    waiters: FxHashMap<usize, Vec<usize>>,
    cache: AnswerCache,
    stats: ServiceStats,
}

impl ImplicationService {
    /// An empty service.
    pub fn new(cfg: ServiceConfig) -> Self {
        Self {
            cfg,
            jobs: Vec::new(),
            queue: VecDeque::new(),
            inflight: FxHashMap::default(),
            waiters: FxHashMap::default(),
            cache: AnswerCache::default(),
            stats: ServiceStats::default(),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Distinct canonical queries answered so far.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Submits one query `Σ ⊨(f) σ`. `pool` must be (a snapshot of) the
    /// pool the dependencies' values were interned in; each job owns its
    /// pool, so many jobs over unrelated pools can be in flight at once.
    ///
    /// Returns immediately: a cache hit is `Done` on the first
    /// [`ImplicationService::poll`], an identical in-flight query coalesces,
    /// anything else enters the run queue.
    pub fn submit(&mut self, mut sigma: Vec<TdOrEgd>, goal: TdOrEgd, pool: ValuePool) -> JobId {
        self.stats.submitted += 1;
        let idx = self.jobs.len();
        let mut key = None;
        if self.cfg.cache {
            let (k, dep_keys) = query_key_and_sigma_keys(&sigma, &goal);
            key = Some(k);
            // Run the same Σ the key describes: canonically duplicate
            // dependencies are logically redundant (isomorphic constraints
            // are equivalent) but would inflate this job's per-round scan
            // relative to a dedup-submitted twin.
            let mut seen_deps = FxHashSet::default();
            let mut di = 0;
            sigma.retain(|_| {
                let keep = seen_deps.insert(dep_keys[di].clone());
                di += 1;
                keep
            });
        }
        if let Some(k) = &key {
            match self.cache.probe(k, &goal, self.cfg.verify_cache_hits) {
                Probe::Hit(answer) => {
                    self.stats.cache_hits += 1;
                    let outcome = JobOutcome {
                        implication: answer.implication,
                        finite_implication: answer.finite_implication,
                        counterexample: None,
                        from_cache: true,
                        fuel_spent: 0,
                    };
                    self.record_answer(&outcome);
                    self.jobs.push(Job {
                        slot: Slot::Finished(outcome),
                        key,
                        goal,
                        fuel_spent: 0,
                    });
                    return JobId(idx);
                }
                Probe::Rejected => {
                    // Verification just proved this key collides with a
                    // non-isomorphic query (a canonicalization bug). The
                    // key cannot be trusted for *any* sharing: no
                    // coalescing onto an in-flight holder of it, no cache
                    // write under it. Run the job in isolation.
                    self.stats.verify_rejects += 1;
                    key = None;
                }
                Probe::Miss => {}
            }
        }
        if let Some(k) = &key {
            if let Some(&leader) = self.inflight.get(k) {
                self.stats.coalesced += 1;
                self.waiters.entry(leader).or_default().push(idx);
                self.jobs.push(Job {
                    slot: Slot::Waiting { leader },
                    key,
                    goal,
                    fuel_spent: 0,
                });
                return JobId(idx);
            }
            self.inflight.insert(k.clone(), idx);
        }
        self.stats.cache_misses += 1;
        let task = DecideTask::new(sigma, goal.clone(), pool, self.cfg.decide.clone());
        self.jobs.push(Job {
            slot: Slot::Running(Box::new(task)),
            key,
            goal,
            fuel_spent: 0,
        });
        self.queue.push_back(idx);
        JobId(idx)
    }

    /// The job's current status. Cheap; never advances work.
    pub fn poll(&self, id: JobId) -> JobStatus {
        match &self.jobs[id.0].slot {
            Slot::Finished(outcome) => JobStatus::Done(outcome.clone()),
            _ => JobStatus::Pending,
        }
    }

    /// Jobs still in flight (running or coalesced-waiting).
    pub fn pending_jobs(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| !matches!(j.slot, Slot::Finished(_)))
            .count()
    }

    /// Remaining global fuel, if a budget is set.
    fn global_remaining(&self) -> Option<u64> {
        self.cfg
            .global_fuel
            .map(|total| total.saturating_sub(self.stats.fuel_spent))
    }

    /// One fair sweep: every running job gets (at most) one fuel slice, in
    /// round-robin order. Returns `false` once nothing is left to do (run
    /// queue empty or global fuel exhausted).
    pub fn tick(&mut self) -> bool {
        if self.queue.is_empty() || self.global_remaining() == Some(0) {
            return false;
        }
        self.stats.sweeps += 1;
        // Claim this sweep's batch (jobs submitted mid-sweep wait for the
        // next one) and move the tasks out of their slots.
        let batch: Vec<usize> = self.queue.drain(..).collect();
        let slice = self.cfg.slice_fuel.max(1);
        let mut stepped: Vec<(usize, Box<DecideTask>, DecideStatus)> =
            Vec::with_capacity(batch.len());
        let mut claimed: Vec<(usize, Box<DecideTask>)> = Vec::with_capacity(batch.len());
        for &idx in &batch {
            match std::mem::replace(&mut self.jobs[idx].slot, Slot::Stepping) {
                Slot::Running(task) => claimed.push((idx, task)),
                other => {
                    // Not runnable (finished by coalescing etc.): restore.
                    self.jobs[idx].slot = other;
                }
            }
        }
        if self.cfg.workers > 1 && claimed.len() > 1 {
            let workers = self.cfg.workers.min(claimed.len());
            let chunk = claimed.len().div_ceil(workers);
            let chunks: Vec<Vec<(usize, Box<DecideTask>)>> = {
                let mut it = claimed.into_iter();
                let mut out = Vec::with_capacity(workers);
                loop {
                    let c: Vec<_> = it.by_ref().take(chunk).collect();
                    if c.is_empty() {
                        break;
                    }
                    out.push(c);
                }
                out
            };
            let results: Vec<Vec<(usize, Box<DecideTask>, DecideStatus)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .map(|chunk| {
                            scope.spawn(move || {
                                chunk
                                    .into_iter()
                                    .map(|(idx, mut task)| {
                                        let status = task.step(slice);
                                        (idx, task, status)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
            for r in results {
                stepped.extend(r);
            }
            // Parallel chunks return out of submission order; restore it so
            // completions (stats, cache inserts) stay deterministic.
            stepped.sort_unstable_by_key(|&(idx, _, _)| idx);
        } else {
            for (idx, mut task) in claimed {
                // Sequential mode can meter the global budget per slice.
                let allowed = match self.global_remaining() {
                    Some(rem) => slice.min(rem as usize),
                    None => slice,
                };
                if allowed == 0 {
                    stepped.push((idx, task, DecideStatus::Pending));
                    continue;
                }
                let before = task.fuel_spent();
                let status = task.step(allowed);
                let used = task.fuel_spent() - before;
                self.stats.fuel_spent += used;
                self.jobs[idx].fuel_spent += used;
                stepped.push((idx, task, status));
            }
        }
        if self.cfg.workers > 1 {
            // Account parallel fuel after the join.
            for (idx, task, _) in &stepped {
                let used = task.fuel_spent() - self.jobs[*idx].fuel_spent;
                self.stats.fuel_spent += used;
                self.jobs[*idx].fuel_spent = task.fuel_spent();
            }
        }
        for (idx, task, status) in stepped {
            match status {
                DecideStatus::Pending => {
                    self.jobs[idx].slot = Slot::Running(task);
                    self.queue.push_back(idx);
                }
                DecideStatus::Done(_) => self.complete(idx, *task),
            }
        }
        !self.queue.is_empty() && self.global_remaining() != Some(0)
    }

    /// Drives every in-flight job to an answer: ticks until the run queue
    /// drains, then — if the global fuel budget cut the run short — answers
    /// the leftovers `Unknown` (an honest answer for an undecidable
    /// problem under a finite budget).
    pub fn run_to_completion(&mut self) {
        while self.tick() {}
        if !self.queue.is_empty() {
            self.expire_pending();
        }
    }

    /// Answers every still-running job `Unknown` (global budget spent).
    fn expire_pending(&mut self) {
        let leftovers: Vec<usize> = self.queue.drain(..).collect();
        for idx in leftovers {
            let fuel = self.jobs[idx].fuel_spent;
            let outcome = JobOutcome {
                implication: Answer::Unknown,
                finite_implication: Answer::Unknown,
                counterexample: None,
                from_cache: false,
                fuel_spent: fuel,
            };
            self.stats.expired += 1;
            // Deliberately *not* cached: this Unknown reflects global
            // scheduling pressure, not the per-query budgets the cache's
            // answers are deterministic functions of.
            self.record_answer(&outcome);
            self.resolve_waiters(idx, &outcome);
            if let Some(k) = &self.jobs[idx].key {
                self.inflight.remove(k);
            }
            self.jobs[idx].slot = Slot::Finished(outcome);
        }
    }

    /// Finishes a job from its decided task: records stats, fills the
    /// cache, wakes coalesced waiters.
    fn complete(&mut self, idx: usize, task: DecideTask) {
        let (decision, _pool) = task.finish();
        let outcome = JobOutcome {
            implication: decision.implication,
            finite_implication: decision.finite_implication,
            counterexample: decision.counterexample,
            from_cache: false,
            fuel_spent: self.jobs[idx].fuel_spent,
        };
        self.record_answer(&outcome);
        if let Some(k) = self.jobs[idx].key.clone() {
            // Only definite answers are cached: Yes/No are certificates,
            // true of every isomorphic presentation of the query, while
            // Unknown is a budget artifact that could differ between
            // canonically equal submissions.
            if outcome.implication != Answer::Unknown {
                self.cache.insert(
                    k.clone(),
                    CachedAnswer {
                        implication: outcome.implication,
                        finite_implication: outcome.finite_implication,
                    },
                    &self.jobs[idx].goal,
                );
            }
            self.inflight.remove(&k);
        }
        self.resolve_waiters(idx, &outcome);
        self.jobs[idx].slot = Slot::Finished(outcome);
    }

    /// Wakes every job coalesced onto `leader` with its answers.
    fn resolve_waiters(&mut self, leader: usize, outcome: &JobOutcome) {
        for i in self.waiters.remove(&leader).unwrap_or_default() {
            debug_assert!(
                matches!(self.jobs[i].slot, Slot::Waiting { leader: l } if l == leader),
                "waiter list out of sync with job slots"
            );
            let waiter_outcome = JobOutcome {
                implication: outcome.implication,
                finite_implication: outcome.finite_implication,
                counterexample: None,
                from_cache: true,
                fuel_spent: 0,
            };
            self.record_answer(&waiter_outcome);
            self.jobs[i].slot = Slot::Finished(waiter_outcome);
        }
    }

    /// Updates the answer histogram and completion count.
    fn record_answer(&mut self, outcome: &JobOutcome) {
        self.stats.completed += 1;
        match outcome.implication {
            Answer::Yes => self.stats.yes += 1,
            Answer::No => self.stats.no += 1,
            Answer::Unknown => self.stats.unknown += 1,
        }
    }
}
