//! The concurrent implication service v2: cheap-to-clone client handles
//! over shared sharded state, with a preemptible execution core.
//!
//! # Why a shared-state client
//!
//! The paper proves no total algorithm decides typed-td implication, so
//! the system's value at scale is serving *many* fuel-bounded queries
//! concurrently. The v1 `ImplicationService` fought that goal: `submit`
//! and `tick` took `&mut self`, so one exclusive owner serialized every
//! submission and every sweep, and finished jobs plus cached answers
//! accumulated forever. v2 separates the immutable specification of a
//! query ([`QuerySpec`]) from its evaluation, PDQ-style:
//!
//! * [`ImplicationClient`] is a cheap [`Clone`] handle (an `Arc` over the
//!   shared core); every method takes `&self`, so any number of threads
//!   submit and step concurrently;
//! * [`JobHandle`] owns one job's lifecycle — [`JobHandle::poll`],
//!   blocking [`JobHandle::wait`] (which *helps*: it steps the shard that
//!   owns its job, and **parks on the shard's condvar** instead of
//!   spinning when another thread holds the claim), a real
//!   [`JobHandle::cancel`] that stops the computation mid-slice, and
//!   retire-on-drop so polled outcomes stop leaking;
//! * internally, jobs hash by canonical query key onto N **shards**, each
//!   with its own run queue, job slab, coalescing map, and answer-cache
//!   slice behind its own lock — submission and stepping on different
//!   shards never contend, and a `wait` only pays for the divergent
//!   neighbours that share its shard, not the whole service.
//!
//! # Dovetailing as scheduling
//!
//! Within a shard the scheduler is a fair dovetailer: every runnable job
//! gets one fuel slice per sweep (priority orders the claim, FIFO breaks
//! ties), so a terminating query is answered after boundedly many sweeps
//! no matter how many divergent neighbours it has — starvation-freedom is
//! exactly the fairness clause of the classical dovetailing argument.
//! Per-job and global fuel budgets convert "never returns" into the
//! honest third answer `Unknown`; a `DecideMode::Dovetail` decide config
//! additionally dovetails *within* each job, racing the chase against the
//! finite-model search so refutable-but-divergent queries answer `No`
//! without waiting out a chase that never terminates.
//!
//! # Cancellation
//!
//! [`JobHandle::cancel`] trips the job's `CancelToken` (shared with its
//! `DecideTask`, checked at round/attempt granularity), so an in-flight
//! job stops within one fuel slice instead of burning its remaining
//! budget, and resolves to the defined [`JobStatus::Cancelled`].
//! Coalesced waiters are woken with `Cancelled` too — unless they opted
//! into keeping the answer via [`JobHandle::detach`], in which case the
//! computation survives for them and only the canceller's view resolves
//! `Cancelled` (when the job next lands).
//!
//! # Work stealing
//!
//! [`ImplicationClient::run_to_completion`] with several workers pins
//! each worker to a stripe of home shards. An idle worker whose home
//! queues are empty **steals** the next claimable job from the deepest
//! foreign queue ([`ServiceConfig::steal`]): the stolen job's slot, key,
//! and waiters stay in its home shard — only the slice's CPU work
//! migrates — so `JobId`s and coalescing are unaffected. Steal counts are
//! surfaced in [`ServiceStats::steals`]. Workers with nothing to do (and
//! waiters whose claim is held elsewhere) park on condvars instead of
//! yield-spinning; parks are counted in [`ServiceStats::parked`].
//!
//! # The bounded answer cache
//!
//! Jobs are keyed by the canonical form of `(Σ, σ)` ([`crate::canon`]);
//! finished answers are recorded under their key with service-wide
//! LRU/cost-aware eviction ([`crate::cache`]), identical in-flight queries
//! coalesce onto the running leader (coalesced entries are pinned, never
//! evicted), and a goal that is canonically an *element* of Σ is answered
//! `Yes` at submit time without scheduling at all. A fresh insert is never
//! its own eviction victim (the shard holding it evicts other entries
//! first), so tiny capacities — even `cache_capacity = 1` — still cache
//! the latest answer instead of thrashing. With the cache disabled,
//! `submit` skips canonicalization entirely and routes by a raw
//! structural hash. Hits, evictions, and the fast path are all surfaced
//! in [`ServiceStats`].

use crate::cache::{goal_hypothesis, CachedAnswer, Probe, ShardCache};
use crate::canon::{group_query, permute_relation, query_parts, GoalDecoder, GroupKey, QueryKey};
use crate::persist::{PersistConfig, PersistLog, ReplayedRecord};
use crate::telemetry::{Exposition, OutcomeKind, Telemetry, TelemetrySnapshot};
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typedtd_chase::{
    classify, routed_decide_config, Answer, CancelToken, ChaseOutcome, ChaseRun, ChaseTask,
    ChaseTrace, DecideConfig, DecideStatus, DecideTask, Decision, ProgressSnapshot, RouteClass,
    StepStatus, TaskPhase,
};
use typedtd_dependencies::{DependencyClass, TdOrEgd};
use typedtd_relational::{isomorphic, FxHashMap, FxHashSet, Relation, ValuePool};

/// How long a parked waiter or idle worker sleeps before re-checking.
/// Wakeups are condvar-driven (completions and queue transitions notify);
/// the timeout only bounds the stall when a notify races a park.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Service-wide knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Default per-query decision budgets (chase + search) and
    /// [`typedtd_chase::DecideMode`]; a [`QuerySpec::decide_config`]
    /// override takes precedence per job.
    pub decide: DecideConfig,
    /// Fuel units (chase rounds / search attempts) granted to a job per
    /// shard sweep. Smaller slices preempt faster; larger slices amortize
    /// bookkeeping.
    pub slice_fuel: usize,
    /// Global fuel budget across all jobs; once spent, stepping reports
    /// fuel exhaustion and pending jobs are answered `Unknown` by
    /// [`ImplicationClient::run_to_completion`] / [`JobHandle::wait`].
    pub global_fuel: Option<u64>,
    /// Scheduler shards. Jobs hash by canonical key onto a shard;
    /// different shards submit and step without contending.
    pub shards: usize,
    /// Worker threads [`ImplicationClient::run_to_completion`] drives the
    /// shards with. `1` = the calling thread only. With more, each worker
    /// is pinned to a stripe of home shards and steals from foreign
    /// queues when idle (see [`ServiceConfig::steal`]). (Any number of
    /// *external* threads may also step concurrently through clones of
    /// the client.)
    pub workers: usize,
    /// Cross-shard work stealing for idle `run_to_completion` workers: an
    /// idle worker with empty home queues claims one slice of the next
    /// job from the deepest foreign queue. Disable to pin work strictly
    /// to home workers (a skewed shard assignment then degrades to
    /// single-worker throughput on the hot shard).
    pub steal: bool,
    /// Enable the canonical answer cache (and in-flight coalescing).
    /// When disabled, `submit` skips canonicalization entirely: shard
    /// routing falls back to a raw structural hash of the query, Σ is not
    /// deduplicated, and every job really runs.
    pub cache: bool,
    /// Upper bound on cached answers across all shards; beyond it the
    /// least-recently-used cold entry is evicted (in-flight coalesced
    /// entries are pinned and never evicted). A fresh insert is never its
    /// own eviction victim, so when `cache_capacity < shards` the cache
    /// may transiently hold up to one entry per shard.
    pub cache_capacity: usize,
    /// Re-verify every cache hit through the isomorphism machinery.
    pub verify_cache_hits: bool,
    /// Persist definite answers to an append-only log and replay them on
    /// startup (see [`crate::persist`]). `None` keeps the cache purely
    /// in-memory. Replayed entries count toward
    /// [`ServiceStats::warm_hits`] when hit; persistent write failure
    /// degrades the log to read-only in-memory mode (counted in
    /// [`ServiceStats::persist_errors`]) without affecting served
    /// traffic.
    pub persist: Option<PersistConfig>,
    /// Record latency/queue-wait/run-time/fuel histograms (see
    /// [`crate::telemetry`]). On by default — the record path is a few
    /// relaxed atomic adds plus two `Instant` reads per job landing —
    /// but switchable off for an exact zero-overhead baseline (the
    /// `telemetry_overhead` bench scenario measures the difference).
    pub metrics: bool,
    /// Route each scheduled query through the Σ fragment classifier
    /// ([`typedtd_chase::classify`]): a weakly acyclic Σ has a
    /// *terminating* chase, so the job runs sequentially with unbounded
    /// chase budgets and skips the finite-model search entirely — the
    /// chase alone decides both implication problems. Linear/guarded
    /// detections are surfaced in [`ServiceStats::class_routed`] without
    /// changing execution. A per-query [`QuerySpec::decide_config`]
    /// override disables routing for that job (the submitter's explicit
    /// config wins).
    pub classify: bool,
    /// Share one saturation chase across every in-flight query with the
    /// same canonical Σ *and* the same canonical goal hypothesis (see
    /// [`crate::canon::group_query`]): the group's tableau is chased
    /// once, and each member's goal is checked against the shared pool —
    /// N chases become 1 for the batch shape where many goals interrogate
    /// one Σ. A member whose group budget expires falls back to its own
    /// individual chase, so grouping never manufactures a definite
    /// answer. Off by default (grouping bypasses the per-job dovetail
    /// against finite-model search, so `No` answers for *divergent*
    /// queries may degrade to fallback work).
    pub group: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            decide: DecideConfig::default(),
            slice_fuel: 8,
            global_fuel: None,
            shards: 8,
            workers: 1,
            steal: true,
            cache: true,
            cache_capacity: 4096,
            verify_cache_hits: false,
            persist: None,
            metrics: true,
            classify: true,
            group: false,
        }
    }
}

/// Identity of a submitted job: shard, slot, and an ABA-guarding
/// generation. Retiring a job frees its slot for reuse; a stale id then
/// reports [`JobStatus::Retired`] instead of another job's answer.
///
/// A `JobId` is only meaningful against the service that issued it:
/// distinct services allocate slots and generations independently, so an
/// id carried across services can collide with an unrelated job there
/// (an out-of-range shard or slot still answers `Retired`, never a
/// panic).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct JobId {
    shard: u32,
    slot: u32,
    generation: u32,
}

/// A finished job's result.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Answer for unrestricted implication `Σ ⊨ σ`.
    pub implication: Answer,
    /// Answer for finite implication `Σ ⊨_f σ`.
    pub finite_implication: Answer,
    /// A finite counterexample when either answer is `No` and this job did
    /// the work itself (cache/coalesced answers carry no certificate: the
    /// certificate's values live in the original submitter's pool).
    pub counterexample: Option<Relation>,
    /// `true` if the answers came without fresh fuel: a cache hit, a
    /// coalesced leader's result, or the goal-in-Σ fast path.
    pub from_cache: bool,
    /// Fuel this job consumed (0 for cache hits).
    pub fuel_spent: u64,
    /// `true` if the job was cancelled before it produced an answer (the
    /// answers are then `Unknown`). [`JobHandle::wait`] returns such an
    /// outcome for a cancelled job; `poll` reports it as
    /// [`JobStatus::Cancelled`].
    pub cancelled: bool,
}

/// Poll result for a job.
#[derive(Clone, Debug)]
pub enum JobStatus {
    /// Still in flight; keep stepping the service.
    Pending,
    /// Finished.
    Done(JobOutcome),
    /// The job was cancelled ([`JobHandle::cancel`], or its coalescing
    /// leader was cancelled while this job had not
    /// [`JobHandle::detach`]ed): no answer was produced. A defined,
    /// stable status — never a panic, never another job's result.
    Cancelled,
    /// The job was retired (its [`JobHandle`] dropped or
    /// [`JobHandle::retire`]d): its storage is freed and its outcome is
    /// gone. Polling a retired id is a defined, stable answer — never a
    /// panic, never another job's result.
    Retired,
}

/// Aggregate service counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs finished (including cache hits, expiries, and cancellations).
    pub completed: u64,
    /// Submissions answered instantly from the cache.
    pub cache_hits: u64,
    /// Submissions answered `Yes` at submit time because the goal is
    /// canonically an element of Σ (implication is reflexive). Rides the
    /// [`ServiceConfig::cache`] switch: with the cache off every job
    /// really runs.
    pub goal_in_sigma: u64,
    /// Submissions coalesced onto an identical in-flight job.
    pub coalesced: u64,
    /// Submissions that had to run (cache enabled but cold, or disabled).
    pub cache_misses: u64,
    /// Cache key hits rejected by isomorphism verification (should be 0;
    /// a nonzero count flags a canonicalization bug).
    pub verify_rejects: u64,
    /// Jobs force-answered `Unknown` by fuel exhaustion (global budget or
    /// a per-job [`QuerySpec::fuel_cap`]).
    pub expired: u64,
    /// Jobs resolved [`JobStatus::Cancelled`] (directly, via a cancelled
    /// coalescing leader, or a leader whose owner cancelled while
    /// detached waiters kept the computation alive).
    pub cancelled: u64,
    /// Jobs retired (handle dropped or explicitly retired); their slots
    /// were freed for reuse.
    pub retired: u64,
    /// Cached answers evicted to keep the cache within
    /// [`ServiceConfig::cache_capacity`].
    pub evictions: u64,
    /// Total fuel spent across all jobs.
    pub fuel_spent: u64,
    /// Shard sweeps that stepped at least one job.
    pub sweeps: u64,
    /// Fuel slices executed by a worker on a shard outside its home
    /// stripe (cross-shard work stealing).
    pub steals: u64,
    /// Times a waiter or idle worker parked on a condvar instead of
    /// spinning (each park is condvar- or timeout-bounded).
    pub parked: u64,
    /// Jobs answered `Yes` (unrestricted implication).
    pub yes: u64,
    /// Jobs answered `No`.
    pub no: u64,
    /// Jobs answered `Unknown`.
    pub unknown: u64,
    /// Cache hits served by an entry replayed from the persistence log —
    /// the warm-restart signal (a subset of
    /// [`ServiceStats::cache_hits`]).
    pub warm_hits: u64,
    /// Failed persistence-log appends (each one also healed the log back
    /// to a record boundary; enough consecutive failures degrade the log
    /// to read-only in-memory mode). Opening an unusable log at startup
    /// counts one.
    pub persist_errors: u64,
    /// Submissions a front end bounced at its overload bound instead of
    /// scheduling (`typedtd-sockd --max-inflight`; counted via
    /// [`ImplicationClient::note_shed`], so every ledger reports it
    /// uniformly).
    pub shed: u64,
    /// Submissions broken down by the goal's surface dependency class
    /// (indexed by [`DependencyClass::index`]). The class is the
    /// submitter's tag ([`QuerySpec::goal_class`]); untagged queries
    /// default to the goal's normal-form shape (td or egd).
    pub class_submitted: [u64; DependencyClass::COUNT],
    /// Cache hits per goal class (same indexing as
    /// [`ServiceStats::class_submitted`]).
    pub class_cache_hits: [u64; DependencyClass::COUNT],
    /// Cache misses (scheduled computations) per goal class.
    pub class_cache_misses: [u64; DependencyClass::COUNT],
    /// Scheduled computations by the fragment route the classifier chose
    /// (indexed by [`RouteClass::index`]): `terminating` jobs run the
    /// chase alone under unbounded budgets, `linear`/`guarded` are
    /// observational detections, `dovetail` is the general-case default.
    /// All zero when [`ServiceConfig::classify`] is off; per-query decide
    /// overrides also bypass routing.
    pub class_routed: [u64; RouteClass::COUNT],
    /// Scheduled computations that joined a shared Σ-group saturation
    /// instead of running their own chase
    /// ([`ServiceConfig::group`]).
    pub grouped: u64,
    /// Shared group saturation chases actually started — the savings
    /// denominator: `grouped` members were served by this many chases.
    pub group_chases: u64,
    /// Group members that fell back to an individual chase after the
    /// shared saturation exhausted its budget without settling their
    /// goal.
    pub group_fallbacks: u64,
}

impl ServiceStats {
    /// Fraction of cache lookups that hit: `hits / (hits + misses)`.
    /// Coalesced submissions and the goal-in-Σ fast path count as neither
    /// (they never probed a finished entry). `0.0` before any lookup.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// [`ServiceStats::cache_hit_rate`] restricted to one goal class.
    /// `0.0` before any lookup of that class.
    pub fn class_hit_rate(&self, class: DependencyClass) -> f64 {
        let i = class.index();
        let lookups = self.class_cache_hits[i] + self.class_cache_misses[i];
        if lookups == 0 {
            0.0
        } else {
            self.class_cache_hits[i] as f64 / lookups as f64
        }
    }
}

/// One query, fully specified: the immutable `(Σ, σ)` instance plus its
/// pool and per-query evaluation overrides. Build with [`QuerySpec::new`]
/// and the chained setters, then hand to [`ImplicationClient::submit`].
#[derive(Clone, Debug)]
pub struct QuerySpec {
    sigma: Vec<TdOrEgd>,
    goal: TdOrEgd,
    pool: ValuePool,
    priority: i32,
    fuel_cap: Option<u64>,
    decide: Option<DecideConfig>,
    pin: Option<usize>,
    class: Option<DependencyClass>,
}

impl QuerySpec {
    /// A query `Σ ⊨(f) σ`. `pool` must be (a snapshot of) the pool the
    /// dependencies' values were interned in; each job owns its pool, so
    /// many jobs over unrelated pools can be in flight at once.
    pub fn new(sigma: Vec<TdOrEgd>, goal: TdOrEgd, pool: ValuePool) -> Self {
        Self {
            sigma,
            goal,
            pool,
            priority: 0,
            fuel_cap: None,
            decide: None,
            pin: None,
            class: None,
        }
    }

    /// Scheduling priority (default 0; higher is claimed earlier within a
    /// sweep; FIFO among equals — fairness still guarantees every job one
    /// slice per sweep).
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Per-job fuel cap: once this job has spent `cap` fuel units it is
    /// answered `Unknown` (counted in [`ServiceStats::expired`]),
    /// regardless of the global budget.
    pub fn fuel_cap(mut self, cap: u64) -> Self {
        self.fuel_cap = Some(cap);
        self
    }

    /// Per-job decision budgets (and mode), overriding
    /// [`ServiceConfig::decide`].
    pub fn decide_config(mut self, cfg: DecideConfig) -> Self {
        self.decide = Some(cfg);
        self
    }

    /// Pins this job to a specific shard (wrapped modulo the shard
    /// count), overriding hash routing. A scheduling knob for tests and
    /// benchmarks — e.g. to construct deliberately skewed assignments
    /// when measuring work stealing. Cache entries follow the pinned
    /// shard, so pinning identical queries to different shards forfeits
    /// sharing between them (each shard's cache stays locally
    /// consistent).
    pub fn pin_shard(mut self, shard: usize) -> Self {
        self.pin = Some(shard);
        self
    }

    /// Tags the goal's surface dependency class for the per-class
    /// counters in [`ServiceStats`]. Purely observational — scheduling,
    /// canonicalization, and caching ignore the tag (two syntaxes
    /// normalizing to the same td still share one cache entry). Untagged
    /// queries are counted under the goal's normal-form shape
    /// ([`DependencyClass::Td`] or [`DependencyClass::Egd`]).
    pub fn goal_class(mut self, class: DependencyClass) -> Self {
        self.class = Some(class);
        self
    }
}

/// What one shard-stepping call accomplished.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShardStep {
    /// At least one job was stepped or completed.
    Progressed,
    /// Nothing claimable right now, but another thread holds claimed jobs
    /// from this shard — work is still in flight; park or retry.
    Idle,
    /// The shard has no runnable or in-flight-stepping jobs.
    Empty,
    /// Runnable jobs exist but the global fuel budget is spent.
    FuelExhausted,
}

enum JobState {
    /// Free slot (on the shard's free list).
    Vacant,
    /// In flight, queued for its next slice.
    Running(ServiceTask),
    /// Transiently claimed by a stepping thread.
    Stepping,
    /// Coalesced: waiting for the identical in-flight leader to finish.
    Waiting { leader: u32 },
    /// Finished; outcome retained until the handle retires it. A
    /// cancelled job stores an outcome with `cancelled = true` and polls
    /// as [`JobStatus::Cancelled`].
    Finished(JobOutcome),
}

struct JobSlot {
    generation: u32,
    state: JobState,
    /// Canonical key (when caching): where this job's answers get
    /// recorded, and whose in-flight marker it holds while running.
    key: Option<QueryKey>,
    /// Goal-hypothesis snapshot for cache insertion, columns already in
    /// the query's canonical order (keyed leaders only).
    goal_hyp: Option<Relation>,
    fuel_spent: u64,
    fuel_cap: Option<u64>,
    priority: i32,
    /// The running task's cancellation token (leaders only).
    cancel: Option<CancelToken>,
    /// The owner called [`JobHandle::cancel`] while the job was in
    /// flight. If the token is also tripped the job dies at its next
    /// landing; if not (detached waiters keep it alive), the computation
    /// continues and only the owner's view resolves `Cancelled`.
    cancel_requested: bool,
    /// This job (as a coalesced waiter) wants the leader's answer even if
    /// the leader's owner cancels. Set via [`JobHandle::detach`] before
    /// the cancel.
    detached: bool,
    /// Handle dropped while the job was still in flight: on completion,
    /// feed cache and waiters but free the slot instead of storing the
    /// outcome.
    retired: bool,
    /// Submit time, for the latency histograms. `None` when metrics are
    /// off (or for fast-path slots allocated already Finished, which
    /// record their latency at submit instead).
    started: Option<Instant>,
    /// Wall-clock nanoseconds this job has actually been stepped
    /// (metrics on; leaders only). Queue wait = total latency − this.
    run_nanos: u64,
    /// Last per-slice [`ProgressSnapshot`] of the job's task (leaders
    /// only; sampled after every step, kept after landing).
    progress: ProgressSnapshot,
}

impl JobSlot {
    /// The job's owner cancelled it *and* the token is tripped (no
    /// detached waiters kept it alive): the job must die at its next
    /// touch instead of being granted fuel or coalesced onto.
    fn dying(&self) -> bool {
        self.cancel_requested && self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }
}

/// The schedulable unit behind a `Running` slot: either a private
/// [`DecideTask`] (the default) or membership in a shared Σ-group
/// saturation ([`ServiceConfig::group`]). Both expose the same
/// step/fuel/progress/cancel surface, so the shard scheduler treats them
/// identically.
enum ServiceTask {
    /// A private decide computation (chase + optional search dovetail).
    Decide(Box<DecideTask>),
    /// One member of a shared Σ-group saturation.
    Group(Box<GroupMember>),
}

impl ServiceTask {
    fn step(&mut self, fuel: usize) -> DecideStatus {
        match self {
            ServiceTask::Decide(t) => t.step(fuel),
            ServiceTask::Group(m) => m.step(fuel),
        }
    }

    fn fuel_spent(&self) -> u64 {
        match self {
            ServiceTask::Decide(t) => t.fuel_spent(),
            ServiceTask::Group(m) => m.fuel_spent(),
        }
    }

    fn progress_snapshot(&self) -> ProgressSnapshot {
        match self {
            ServiceTask::Decide(t) => t.progress_snapshot(),
            ServiceTask::Group(m) => m.progress_snapshot(),
        }
    }

    fn cancel_token(&self) -> CancelToken {
        match self {
            ServiceTask::Decide(t) => t.cancel_token(),
            ServiceTask::Group(m) => m.cancel.clone(),
        }
    }

    fn finish(self) -> Decision {
        match self {
            ServiceTask::Decide(t) => t.finish().0,
            ServiceTask::Group(m) => m.finish(),
        }
    }
}

/// Registry of shared Σ-group saturations, keyed by canonical
/// [`GroupKey`]. Entries persist after their members land (a saturated
/// group answers later same-group submissions from the warm pool) up to
/// a capacity bound; entries with in-flight members are pinned and never
/// evicted — mirroring the answer cache's in-flight pinning.
struct GroupRegistry {
    groups: FxHashMap<GroupKey, Arc<GroupEntry>>,
    /// Monotone use-clock for LRU eviction.
    tick: u64,
    capacity: usize,
}

/// One Σ-group: the shared chase behind a mutex, plus the pin count and
/// LRU stamp read by the registry without the state lock.
struct GroupEntry {
    state: Mutex<GroupState>,
    /// In-flight members. Nonzero pins the entry against eviction; the
    /// member's `Drop` decrements, so every landing path (answer,
    /// cancel, expiry, fallback completion) unpins exactly once.
    members: AtomicUsize,
    last_used: AtomicU64,
}

struct GroupState {
    /// The shared saturation chase. Kept after it finishes: terminal
    /// pools answer later members' goal checks without re-chasing.
    chase: ChaseTask,
    /// The chase's terminal outcome, once it has one.
    outcome: Option<ChaseOutcome>,
    /// Decodes member goal encodings into the shared value space.
    decoder: GoalDecoder,
}

/// One query's participation in a shared Σ-group saturation.
///
/// Soundness: every member of a group shares the *identical* canonical
/// seed tableau (the group key includes the canonical goal hypothesis),
/// so the shared chase **is** each member's own implication chase. A
/// derivable goal at any point means `Yes`/`Yes`; a terminal
/// (`NotImplied`) instance where the goal fails is a finite universal
/// model, hence `No`/`No` with the instance as certificate. A budget
/// (`Exhausted`) or cancelled shared chase proves nothing — the member
/// falls back to a private [`DecideTask`] rather than ever manufacturing
/// a definite answer.
struct GroupMember {
    entry: Arc<GroupEntry>,
    /// The member's goal, decoded into the group's shared value space.
    goal: TdOrEgd,
    /// The original query, held for the fallback path (taken at most
    /// once).
    spec: Option<(Vec<TdOrEgd>, TdOrEgd, ValuePool, DecideConfig)>,
    /// The private fallback computation, installed when the shared chase
    /// dies without settling this member's goal.
    fallback: Option<Box<DecideTask>>,
    /// This member's own cancellation token. Deliberately *not* wired
    /// into the shared chase: cancelling one member must not kill its
    /// group-mates' computation.
    cancel: CancelToken,
    /// Fuel attributed to this member (shared rounds it drove, plus any
    /// fallback fuel).
    fuel: u64,
    /// The settled decision, once reached via the shared chase.
    done: Option<Decision>,
    /// `ServiceStats::group_fallbacks`, counted at the moment the
    /// fallback is installed.
    fallbacks: Arc<AtomicU64>,
}

impl Drop for GroupMember {
    fn drop(&mut self) {
        self.entry.members.fetch_sub(1, Ordering::Relaxed);
    }
}

impl GroupMember {
    fn step(&mut self, fuel: usize) -> DecideStatus {
        if let Some(d) = &self.done {
            return DecideStatus::Done(d.implication);
        }
        if self.cancel.is_cancelled() {
            // The scheduler resolves a dying slot without finishing the
            // task, but answer honestly if finish() is reached anyway.
            self.done = Some(self.undecided(ChaseOutcome::Cancelled, true));
            return DecideStatus::Done(Answer::Unknown);
        }
        if let Some(fb) = &mut self.fallback {
            let before = fb.fuel_spent();
            let status = fb.step(fuel);
            self.fuel += fb.fuel_spent() - before;
            return status;
        }
        // Contended state lock: another member is driving the shared
        // chase this instant — report Pending without blocking the whole
        // shard sweep behind the group mutex.
        let Ok(mut guard) = self.entry.state.try_lock() else {
            return DecideStatus::Pending;
        };
        let state = &mut *guard;
        if state.outcome.is_none() {
            let before = state.chase.rounds();
            if let StepStatus::Done(o) = state.chase.step(fuel) {
                state.outcome = Some(o);
            }
            self.fuel += (state.chase.rounds() - before) as u64;
        }
        // A derivable goal is a Yes certificate at *any* point of the
        // shared run — the chase only ever adds consequences of the
        // member's own hypothesis.
        if state.chase.goal_derivable(&self.goal) {
            let rounds = state.chase.rounds();
            self.done = Some(Decision {
                implication: Answer::Yes,
                finite_implication: Answer::Yes,
                chase: ChaseRun {
                    outcome: ChaseOutcome::Implied,
                    trace: ChaseTrace::default(),
                    final_relation: Relation::new(self.goal_universe()),
                    rounds,
                },
                counterexample: None,
                cancelled: false,
            });
            return DecideStatus::Done(Answer::Yes);
        }
        match state.outcome {
            None => DecideStatus::Pending,
            Some(ChaseOutcome::NotImplied) => {
                // Terminal instance, goal fails in it: a finite
                // counterexample for this member (the group seed is the
                // member's own hypothesis).
                let model = state.chase.current_relation().clone();
                let rounds = state.chase.rounds();
                self.done = Some(Decision {
                    implication: Answer::No,
                    finite_implication: Answer::No,
                    chase: ChaseRun {
                        outcome: ChaseOutcome::NotImplied,
                        trace: ChaseTrace::default(),
                        final_relation: model.clone(),
                        rounds,
                    },
                    counterexample: Some(model),
                    cancelled: false,
                });
                DecideStatus::Done(Answer::No)
            }
            Some(_) => {
                // Exhausted (group budget spent) or a stray terminal we
                // cannot certify from: fall back to a private chase.
                // Never a definite answer from a dead shared run.
                drop(guard);
                let (sigma, goal, pool, dcfg) =
                    self.spec.take().expect("fallback installed at most once");
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.fallback = Some(Box::new(DecideTask::new(sigma, goal, pool, dcfg)));
                DecideStatus::Pending
            }
        }
    }

    fn fuel_spent(&self) -> u64 {
        self.fuel
    }

    fn progress_snapshot(&self) -> ProgressSnapshot {
        if let Some(fb) = &self.fallback {
            return fb.progress_snapshot();
        }
        let mut snap = ProgressSnapshot {
            phase: TaskPhase::Chase,
            fuel_spent: self.fuel,
            ..ProgressSnapshot::default()
        };
        // Shared-chase counters when the state lock is free; a contended
        // snapshot just reports the member-local view.
        if let Ok(state) = self.entry.state.try_lock() {
            snap.chase_rounds = state.chase.rounds() as u64;
            snap.chase_steps = state.chase.steps_applied() as u64;
            snap.chase_merges = state.chase.merges() as u64;
            snap.instance_rows = state.chase.instance_rows() as u64;
            snap.join_build_rows = state.chase.join_build_rows();
            snap.join_probe_hits = state.chase.join_probe_hits();
            snap.parallel_shards = state.chase.parallel_shards();
        }
        snap
    }

    fn finish(mut self) -> Decision {
        if let Some(d) = self.done.take() {
            return d;
        }
        if let Some(fb) = self.fallback.take() {
            return fb.finish().0;
        }
        // Finished without ever being stepped to Done (cancel/expiry
        // paths drop the task instead, but stay defensive).
        self.undecided(ChaseOutcome::Exhausted, false)
    }

    fn goal_universe(&self) -> std::sync::Arc<typedtd_relational::Universe> {
        match &self.goal {
            TdOrEgd::Td(t) => t.universe().clone(),
            TdOrEgd::Egd(e) => e.universe().clone(),
        }
    }

    /// An honest non-answer (`Unknown`/`Unknown`) for a member whose
    /// computation stopped without a certificate.
    fn undecided(&self, outcome: ChaseOutcome, cancelled: bool) -> Decision {
        Decision {
            implication: Answer::Unknown,
            finite_implication: Answer::Unknown,
            chase: ChaseRun {
                outcome,
                trace: ChaseTrace::default(),
                final_relation: Relation::new(self.goal_universe()),
                rounds: 0,
            },
            counterexample: None,
            cancelled,
        }
    }
}

/// Run-queue entry; max-heap order = higher priority first, then FIFO by
/// submission sequence. Stale entries (slot reused or no longer Running)
/// are skipped at claim time, which lets retire/expire/cancel leave them
/// behind.
#[derive(PartialEq, Eq)]
struct RunEntry {
    priority: i32,
    seq: std::cmp::Reverse<u64>,
    slot: u32,
    generation: u32,
}

impl Ord for RunEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, self.seq).cmp(&(other.priority, other.seq))
    }
}

impl PartialOrd for RunEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Shard {
    slots: Vec<JobSlot>,
    free: Vec<u32>,
    queue: BinaryHeap<RunEntry>,
    /// Jobs currently claimed by stepping threads.
    stepping: usize,
    cache: ShardCache,
    /// Leader slot → coalesced waiter slots, resolved at completion.
    waiters: FxHashMap<u32, Vec<u32>>,
}

impl Shard {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            queue: BinaryHeap::new(),
            stepping: 0,
            cache: ShardCache::default(),
            waiters: FxHashMap::default(),
        }
    }

    fn alloc(&mut self, state: JobState) -> u32 {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize].state = state;
            i
        } else {
            self.slots.push(JobSlot {
                generation: 0,
                state,
                key: None,
                goal_hyp: None,
                fuel_spent: 0,
                fuel_cap: None,
                priority: 0,
                cancel: None,
                cancel_requested: false,
                detached: false,
                retired: false,
                started: None,
                run_nanos: 0,
                progress: ProgressSnapshot::default(),
            });
            (self.slots.len() - 1) as u32
        }
    }

    fn free_slot(&mut self, idx: u32) {
        let s = &mut self.slots[idx as usize];
        s.state = JobState::Vacant;
        s.generation = s.generation.wrapping_add(1);
        s.key = None;
        s.goal_hyp = None;
        s.fuel_spent = 0;
        s.fuel_cap = None;
        s.priority = 0;
        s.cancel = None;
        s.cancel_requested = false;
        s.detached = false;
        s.retired = false;
        s.started = None;
        s.run_nanos = 0;
        s.progress = ProgressSnapshot::default();
        self.free.push(idx);
    }
}

/// One shard's state plus the condvar parked waiters sleep on. The
/// condvar pairs with the shard mutex: sweepers notify it on any job
/// completion or queue transition.
struct ShardCell {
    shard: Mutex<Shard>,
    cv: Condvar,
}

#[derive(Default)]
struct AtomicStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    goal_in_sigma: AtomicU64,
    coalesced: AtomicU64,
    cache_misses: AtomicU64,
    verify_rejects: AtomicU64,
    expired: AtomicU64,
    cancelled: AtomicU64,
    retired: AtomicU64,
    evictions: AtomicU64,
    fuel_spent: AtomicU64,
    sweeps: AtomicU64,
    steals: AtomicU64,
    parked: AtomicU64,
    yes: AtomicU64,
    no: AtomicU64,
    unknown: AtomicU64,
    warm_hits: AtomicU64,
    persist_errors: AtomicU64,
    shed: AtomicU64,
    class_submitted: [AtomicU64; DependencyClass::COUNT],
    class_cache_hits: [AtomicU64; DependencyClass::COUNT],
    class_cache_misses: [AtomicU64; DependencyClass::COUNT],
    class_routed: [AtomicU64; RouteClass::COUNT],
    grouped: AtomicU64,
    group_chases: AtomicU64,
    /// Shared with every [`GroupMember`] so the fallback is counted at
    /// the moment it is installed, whatever the member's later fate.
    group_fallbacks: Arc<AtomicU64>,
}

struct Core {
    cfg: ServiceConfig,
    shards: Vec<ShardCell>,
    /// Per-shard mirror of `queue.len()`, maintained under the shard
    /// lock at every push/pop, so the steal victim scan reads depths
    /// without touching the hot shard's mutex.
    queue_depth: Vec<AtomicUsize>,
    /// Remaining global fuel; `u64::MAX` means unmetered.
    fuel: AtomicU64,
    metered: bool,
    /// FIFO tiebreak for the priority queues.
    seq: AtomicU64,
    /// Finished cache entries across all shards (enforces the bound).
    cached_total: AtomicUsize,
    /// Unresolved scheduled jobs (Running / Stepping / Waiting) across
    /// all shards — the idle workers' termination condition.
    inflight: AtomicUsize,
    /// Parking spot for idle `run_to_completion` workers (no specific
    /// shard to wait on); completions anywhere notify it.
    idle: Mutex<()>,
    idle_cv: Condvar,
    /// Latched by the first worker that observes a spent fuel budget, so
    /// every pinned worker exits *consistently*: without the latch, one
    /// worker could exit on a transient zero (reserve-then-refund dips
    /// the counter) while a surviving steal-off worker — whose home
    /// stripe is empty — parks forever on the exiter's orphaned jobs.
    /// Reset at the top of each `run_to_completion`.
    draining: std::sync::atomic::AtomicBool,
    /// Shared Σ-group saturations ([`ServiceConfig::group`]). Lock order:
    /// registry before any entry's state; members stepping a group take
    /// only the state lock, never the registry's.
    groups: Mutex<GroupRegistry>,
    stats: AtomicStats,
    /// The open answer log (when [`ServiceConfig::persist`] is set and
    /// the file opened); fresh definite answers append through it.
    persist: Option<PersistLog>,
    /// Histogram families (latency by outcome, queue wait, run time,
    /// fuel per job); recording is a no-op when
    /// [`ServiceConfig::metrics`] is off.
    telemetry: Telemetry,
}

/// A cheap-to-clone handle onto the shared implication service. All
/// methods take `&self`; clones share every shard, the cache, and the
/// stats. See the module docs for the design.
#[derive(Clone)]
pub struct ImplicationClient {
    core: Arc<Core>,
}

impl ImplicationClient {
    /// A fresh service with `cfg` knobs; the returned client is the first
    /// of any number of clones.
    pub fn new(cfg: ServiceConfig) -> Self {
        let nshards = cfg.shards.max(1);
        let fuel = cfg.global_fuel.unwrap_or(u64::MAX);
        let metered = cfg.global_fuel.is_some();
        // Open the answer log (and recover its valid prefix) before the
        // shards exist; an unopenable log counts one persist error and
        // the service runs purely in-memory — startup never fails on a
        // bad disk.
        let (persist, replayed, open_failed) = match cfg.persist.as_ref().filter(|_| cfg.cache) {
            None => (None, Vec::new(), false),
            Some(pc) => match PersistLog::open(pc) {
                Ok((log, records)) => (Some(log), records, false),
                Err(_) => (None, Vec::new(), true),
            },
        };
        let client = Self {
            core: Arc::new(Core {
                shards: (0..nshards)
                    .map(|_| ShardCell {
                        shard: Mutex::new(Shard::new()),
                        cv: Condvar::new(),
                    })
                    .collect(),
                queue_depth: (0..nshards).map(|_| AtomicUsize::new(0)).collect(),
                fuel: AtomicU64::new(fuel),
                metered,
                seq: AtomicU64::new(0),
                cached_total: AtomicUsize::new(0),
                inflight: AtomicUsize::new(0),
                idle: Mutex::new(()),
                idle_cv: Condvar::new(),
                draining: std::sync::atomic::AtomicBool::new(false),
                groups: Mutex::new(GroupRegistry {
                    groups: FxHashMap::default(),
                    tick: 0,
                    capacity: cfg.cache_capacity.max(1),
                }),
                stats: AtomicStats::default(),
                persist,
                telemetry: Telemetry::new(cfg.metrics),
                cfg,
            }),
        };
        if open_failed {
            client.core.stats.persist_errors.fetch_add(1, Ordering::Relaxed);
        }
        client.replay_records(replayed);
        client
    }

    /// Seeds the shard caches with records recovered from the answer log,
    /// marking each entry warm. Records route through the same
    /// key-hash-to-shard function live submissions use, so a later probe
    /// finds them where it looks; the witness relation is rebuilt from
    /// the canonical encoding (see [`QueryKey::witness_relation`]) so
    /// replayed entries pass verified-hit checks. A record whose witness
    /// can't be rebuilt is dropped (a checksum collision, in practice
    /// unreachable); duplicates (the log is append-only across runs)
    /// insert once. The cache bound is enforced as replay goes, exactly
    /// like live inserts.
    fn replay_records(&self, records: Vec<ReplayedRecord>) {
        let nshards = self.core.shards.len();
        for rec in records {
            let Some(witness) = rec.key.witness_relation() else {
                continue;
            };
            let idx = shard_of(&rec.key, nshards);
            let mut shard = self.lock_shard(idx);
            if let Some(interned) = shard
                .cache
                .insert_warm(rec.key, rec.answer, witness, rec.cost)
            {
                self.core.cached_total.fetch_add(1, Ordering::Relaxed);
                self.core.enforce_cache_bound(&mut shard, Some(&interned));
            }
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.core.cfg
    }

    /// Number of scheduler shards (valid arguments to
    /// [`ImplicationClient::step_shard`]).
    pub fn num_shards(&self) -> usize {
        self.core.shards.len()
    }

    /// Aggregate counters (a consistent-enough snapshot: each counter is
    /// individually exact, cross-counter invariants may lag under
    /// concurrent stepping).
    pub fn stats(&self) -> ServiceStats {
        let s = &self.core.stats;
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServiceStats {
            submitted: ld(&s.submitted),
            completed: ld(&s.completed),
            cache_hits: ld(&s.cache_hits),
            goal_in_sigma: ld(&s.goal_in_sigma),
            coalesced: ld(&s.coalesced),
            cache_misses: ld(&s.cache_misses),
            verify_rejects: ld(&s.verify_rejects),
            expired: ld(&s.expired),
            cancelled: ld(&s.cancelled),
            retired: ld(&s.retired),
            evictions: ld(&s.evictions),
            fuel_spent: ld(&s.fuel_spent),
            sweeps: ld(&s.sweeps),
            steals: ld(&s.steals),
            parked: ld(&s.parked),
            yes: ld(&s.yes),
            no: ld(&s.no),
            unknown: ld(&s.unknown),
            warm_hits: ld(&s.warm_hits),
            persist_errors: ld(&s.persist_errors),
            shed: ld(&s.shed),
            class_submitted: std::array::from_fn(|i| ld(&s.class_submitted[i])),
            class_cache_hits: std::array::from_fn(|i| ld(&s.class_cache_hits[i])),
            class_cache_misses: std::array::from_fn(|i| ld(&s.class_cache_misses[i])),
            class_routed: std::array::from_fn(|i| ld(&s.class_routed[i])),
            grouped: ld(&s.grouped),
            group_chases: ld(&s.group_chases),
            group_fallbacks: ld(&s.group_fallbacks),
        }
    }

    /// Counts one submission a front end bounced at its overload bound
    /// (e.g. `typedtd-sockd --max-inflight`) instead of scheduling; the
    /// query never entered the service, so nothing else is touched.
    pub fn note_shed(&self) {
        self.core.stats.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the histogram families (latency by outcome,
    /// queue-wait/run-time split, fuel per job). Empty when
    /// [`ServiceConfig::metrics`] is off.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.core.telemetry.snapshot()
    }

    /// The full Prometheus-style text exposition: every [`ServiceStats`]
    /// counter, the in-flight/cache/queue-depth gauges, and (when
    /// [`ServiceConfig::metrics`] is on) the latency/queue-wait/run-time/
    /// fuel histograms. Durations are nanoseconds; histogram buckets are
    /// powers of two. `typedtd-sockd --metrics PATH` rewrites this
    /// atomically as the service runs.
    pub fn metrics_text(&self) -> String {
        let s = self.stats();
        let mut x = Exposition::new();
        x.counter("typedtd_submitted_total", "Queries submitted", s.submitted);
        x.counter(
            "typedtd_completed_total",
            "Leader computations landed",
            s.completed,
        );
        x.counter("typedtd_cache_hits_total", "Answer-cache hits", s.cache_hits);
        x.counter(
            "typedtd_goal_in_sigma_total",
            "Goals answered Yes at submit (goal canonically in Sigma)",
            s.goal_in_sigma,
        );
        x.counter(
            "typedtd_coalesced_total",
            "Submissions coalesced onto an in-flight leader",
            s.coalesced,
        );
        x.counter(
            "typedtd_cache_misses_total",
            "Submissions that scheduled a new computation",
            s.cache_misses,
        );
        x.counter(
            "typedtd_verify_rejects_total",
            "Cached answers rejected by verification",
            s.verify_rejects,
        );
        x.counter(
            "typedtd_expired_total",
            "Jobs expired to Unknown (fuel cap)",
            s.expired,
        );
        x.counter("typedtd_cancelled_total", "Jobs cancelled", s.cancelled);
        x.counter("typedtd_retired_total", "Job slots retired", s.retired);
        x.counter(
            "typedtd_evictions_total",
            "Answer-cache evictions",
            s.evictions,
        );
        x.counter(
            "typedtd_shed_total",
            "Submissions bounced at a front-end overload bound",
            s.shed,
        );
        x.counter(
            "typedtd_fuel_spent_total",
            "Fuel units consumed by leader computations",
            s.fuel_spent,
        );
        x.counter("typedtd_sweeps_total", "Shard sweeps", s.sweeps);
        x.counter("typedtd_steals_total", "Cross-shard work steals", s.steals);
        x.counter(
            "typedtd_parked_total",
            "Waiter threads parked on a shard condvar",
            s.parked,
        );
        x.counter("typedtd_answer_yes_total", "Answers of Yes", s.yes);
        x.counter("typedtd_answer_no_total", "Answers of No", s.no);
        x.counter(
            "typedtd_answer_unknown_total",
            "Answers of Unknown",
            s.unknown,
        );
        x.counter(
            "typedtd_warm_hits_total",
            "Cache hits served from a replayed persist log",
            s.warm_hits,
        );
        x.counter(
            "typedtd_persist_errors_total",
            "Persist-log append errors (degraded mode)",
            s.persist_errors,
        );
        let by_class = |counts: &[u64; DependencyClass::COUNT]| -> Vec<(String, u64)> {
            DependencyClass::ALL
                .iter()
                .map(|c| (c.as_str().to_string(), counts[c.index()]))
                .collect()
        };
        x.counter_vec(
            "typedtd_class_submitted_total",
            "Queries submitted by goal dependency class",
            "class",
            &by_class(&s.class_submitted),
        );
        x.counter_vec(
            "typedtd_class_cache_hits_total",
            "Answer-cache hits by goal dependency class",
            "class",
            &by_class(&s.class_cache_hits),
        );
        x.counter_vec(
            "typedtd_class_cache_misses_total",
            "Scheduled computations by goal dependency class",
            "class",
            &by_class(&s.class_cache_misses),
        );
        let by_route: Vec<(String, u64)> = RouteClass::ALL
            .iter()
            .map(|r| (r.as_str().to_string(), s.class_routed[r.index()]))
            .collect();
        x.counter_vec(
            "typedtd_class_routed_total",
            "Scheduled computations by classifier fragment route",
            "class",
            &by_route,
        );
        x.counter(
            "typedtd_grouped_total",
            "Computations served by a shared Sigma-group saturation",
            s.grouped,
        );
        x.counter(
            "typedtd_group_chases_total",
            "Shared Sigma-group saturation chases started",
            s.group_chases,
        );
        x.counter(
            "typedtd_group_fallbacks_total",
            "Group members that fell back to a private chase",
            s.group_fallbacks,
        );
        x.gauge(
            "typedtd_jobs_inflight",
            "Jobs currently running, claimed, or coalesced-waiting",
            self.pending_jobs() as u64,
        );
        x.gauge(
            "typedtd_cache_entries",
            "Distinct canonical queries currently cached",
            self.cache_len() as u64,
        );
        let depths: Vec<(String, u64)> = self
            .core
            .queue_depth
            .iter()
            .enumerate()
            .map(|(i, d)| (i.to_string(), d.load(Ordering::Relaxed) as u64))
            .collect();
        x.gauge_vec(
            "typedtd_queue_depth",
            "Runnable jobs queued per shard",
            "shard",
            &depths,
        );
        let t = self.telemetry_snapshot();
        for (kind, h) in t.latencies() {
            x.histogram(
                &format!("typedtd_latency_{}_nanos", kind.as_str()),
                "Submit-to-settle latency by outcome (ns)",
                h,
            );
        }
        x.histogram(
            "typedtd_queue_wait_nanos",
            "Time a leader spent off-CPU between submit and settle (ns)",
            &t.queue_wait,
        );
        x.histogram(
            "typedtd_run_time_nanos",
            "Time a leader spent inside fuel slices (ns)",
            &t.run_time,
        );
        x.histogram(
            "typedtd_fuel_per_job",
            "Fuel consumed per settled job (0 for cache hits and waiters)",
            &t.fuel_per_job,
        );
        x.histogram(
            "typedtd_join_build_rows",
            "Hash-join build-side rows per settled job (chase trigger scans)",
            &t.join_build_rows,
        );
        x.histogram(
            "typedtd_join_probe_hits",
            "Hash-join probe-side hits per settled job (chase trigger scans)",
            &t.join_probe_hits,
        );
        x.histogram(
            "typedtd_parallel_shards",
            "Parallel scan shards per settled job (0 when sequential)",
            &t.parallel_shards,
        );
        x.finish()
    }

    /// The current [`ProgressSnapshot`] of an in-flight job: its task's
    /// phase and cumulative counters as of the job's last fuel slice
    /// (all zeros before the first). `None` once the job has never been
    /// scheduled under this id (retired/stale ids). Finished jobs keep
    /// reporting their final snapshot until retired; coalesced waiters
    /// report their own (zero-fuel) snapshot, not their leader's.
    pub fn job_progress(&self, id: JobId) -> Option<ProgressSnapshot> {
        let cell = self.core.shards.get(id.shard as usize)?;
        let shard = cell.shard.lock().expect("shard lock");
        let slot = shard.slots.get(id.slot as usize)?;
        if slot.generation != id.generation || matches!(slot.state, JobState::Vacant) {
            return None;
        }
        Some(slot.progress)
    }

    /// Distinct canonical queries currently cached (always ≤
    /// [`ServiceConfig::cache_capacity`] once an insert's eviction pass
    /// has run, up to the per-shard fresh-insert reserve documented on
    /// `cache_capacity`).
    pub fn cache_len(&self) -> usize {
        self.core.cached_total.load(Ordering::Relaxed)
    }

    /// Jobs still in flight (running, claimed, or coalesced-waiting).
    pub fn pending_jobs(&self) -> usize {
        self.core.inflight.load(Ordering::Relaxed)
    }

    /// Job slots currently allocated (pending or finished-but-unretired).
    /// Retiring handles drives this back to 0 — the leak the v1 service
    /// could never recover.
    pub fn live_jobs(&self) -> usize {
        self.core
            .shards
            .iter()
            .map(|cell| {
                let shard = cell.shard.lock().expect("shard lock");
                shard
                    .slots
                    .iter()
                    .filter(|s| !matches!(s.state, JobState::Vacant))
                    .count()
            })
            .sum()
    }

    /// Submits one query. Returns immediately: the goal-in-Σ fast path
    /// and cache hits are `Done` on the first poll, an identical in-flight
    /// query coalesces, anything else enters its shard's run queue.
    pub fn submit(&self, spec: QuerySpec) -> JobHandle {
        let core = &*self.core;
        core.stats.submitted.fetch_add(1, Ordering::Relaxed);
        // One clock read per submission when metrics are on; `None`
        // keeps the whole latency machinery off the hot path otherwise.
        let t0 = core.telemetry.enabled().then(Instant::now);
        let QuerySpec {
            mut sigma,
            goal,
            pool,
            priority,
            fuel_cap,
            decide,
            pin,
            class,
        } = spec;
        let class = class.unwrap_or(match &goal {
            TdOrEgd::Td(_) => DependencyClass::Td,
            TdOrEgd::Egd(_) => DependencyClass::Egd,
        });
        core.stats.class_submitted[class.index()].fetch_add(1, Ordering::Relaxed);
        let nshards = core.shards.len();
        let pin = pin.map(|p| p % nshards);
        // With the cache off there is nothing a canonical key buys —
        // route by a raw structural hash instead of paying the
        // canonicalization (a real cost for big Σ). Σ dedup rides the
        // same switch: it needs the per-dependency canonical encodings.
        let (mut key, shard_idx, perm) = if core.cfg.cache {
            let parts = query_parts(&sigma, &goal);
            let shard_idx = pin.unwrap_or_else(|| shard_of(&parts.key, nshards));
            let mut key = Some(parts.key);
            // Goal-in-Σ fast path: σ ∈ Σ up to isomorphism means Σ ⊨ σ and
            // Σ ⊨_f σ by reflexivity — answer before scheduling anything.
            // Under `verify_cache_hits` the key match is cross-checked
            // through the isomorphism machinery exactly like a cache hit
            // would be — a collision quarantines the key and runs the job
            // in isolation instead of serving an unverified Yes.
            if let Some(i) = parts.sigma_keys.iter().position(|k| *k == parts.goal_key) {
                if core.cfg.verify_cache_hits
                    && !isomorphic(&goal_hypothesis(&goal), &goal_hypothesis(&sigma[i]))
                {
                    core.stats.verify_rejects.fetch_add(1, Ordering::Relaxed);
                    key = None;
                } else {
                    core.stats.goal_in_sigma.fetch_add(1, Ordering::Relaxed);
                    let outcome = JobOutcome {
                        implication: Answer::Yes,
                        finite_implication: Answer::Yes,
                        counterexample: None,
                        from_cache: true,
                        fuel_spent: 0,
                        cancelled: false,
                    };
                    core.record_answer(&outcome);
                    core.observe_fast(t0);
                    let mut shard = self.lock_shard(shard_idx);
                    let slot = shard.alloc(JobState::Finished(outcome));
                    return self.handle(shard_idx, slot, &shard);
                }
            }
            // Run the same Σ the key describes: canonically duplicate
            // dependencies are logically redundant (isomorphic constraints
            // are equivalent) but would inflate this job's per-round scan
            // relative to a dedup-submitted twin.
            let mut seen_deps = FxHashSet::default();
            let mut di = 0;
            sigma.retain(|_| {
                let keep = seen_deps.insert(parts.sigma_keys[di].clone());
                di += 1;
                keep
            });
            (key, shard_idx, Some(parts.perm))
        } else {
            let shard_idx =
                pin.unwrap_or_else(|| (raw_query_hash(&sigma, &goal) as usize) % nshards);
            (None, shard_idx, None)
        };
        // The verification witness: the goal hypothesis with columns in
        // the canonical order the key was computed under (equal keys
        // certify isomorphism *after* each side's own permutation). Built
        // eagerly only when hits are verified — the plain hit path never
        // clones a relation; a keyed job that actually runs builds it at
        // slot installation below.
        let mut witness: Option<Relation> = match (&key, &perm) {
            (Some(_), Some(p)) if core.cfg.verify_cache_hits => {
                Some(permute_relation(&goal_hypothesis(&goal), p))
            }
            _ => None,
        };
        let mut shard = self.lock_shard(shard_idx);
        if let Some(k) = &key {
            match shard.cache.probe(k, witness.as_ref()) {
                Probe::Hit { answer, warm } => {
                    core.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    core.stats.class_cache_hits[class.index()].fetch_add(1, Ordering::Relaxed);
                    if warm {
                        core.stats.warm_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    let outcome = JobOutcome {
                        implication: answer.implication,
                        finite_implication: answer.finite_implication,
                        counterexample: None,
                        from_cache: true,
                        fuel_spent: 0,
                        cancelled: false,
                    };
                    core.record_answer(&outcome);
                    core.observe_fast(t0);
                    let slot = shard.alloc(JobState::Finished(outcome));
                    return self.handle(shard_idx, slot, &shard);
                }
                Probe::InFlight(leader) => {
                    if shard.slots[leader as usize].dying() {
                        // The leader is being cancelled: don't coalesce a
                        // fresh submission onto a computation that will
                        // never answer. Run in isolation (the dying
                        // leader still owns the in-flight marker).
                        key = None;
                    } else {
                        core.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                        debug_assert!(
                            matches!(
                                shard.slots[leader as usize].state,
                                JobState::Running(_) | JobState::Stepping
                            ),
                            "in-flight entry must point at a live leader"
                        );
                        core.inflight.fetch_add(1, Ordering::Relaxed);
                        let slot = shard.alloc(JobState::Waiting { leader });
                        shard.slots[slot as usize].started = t0;
                        shard.waiters.entry(leader).or_default().push(slot);
                        return self.handle(shard_idx, slot, &shard);
                    }
                }
                Probe::Rejected => {
                    // Verification just proved this key collides with a
                    // non-isomorphic query (a canonicalization bug). The
                    // key cannot be trusted for *any* sharing: no
                    // coalescing onto an in-flight holder of it, no cache
                    // write under it. Run the job in isolation.
                    core.stats.verify_rejects.fetch_add(1, Ordering::Relaxed);
                    key = None;
                }
                Probe::Miss => {}
            }
        }
        core.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        core.stats.class_cache_misses[class.index()].fetch_add(1, Ordering::Relaxed);
        core.inflight.fetch_add(1, Ordering::Relaxed);
        // Install the slot claimed (`Stepping`) and the in-flight marker
        // under the lock, but build the task — chase-instance seeding,
        // index construction, O(Σ) work — *outside* it: concurrent
        // submitters and steppers on this shard must not serialize behind
        // setup. The marker already coalesces any identical twin onto
        // this slot, and `stepping` keeps drive loops reporting Idle (not
        // Empty) until the task is armed.
        let slot = shard.alloc(JobState::Stepping);
        let generation = {
            let s = &mut shard.slots[slot as usize];
            s.key = key.clone();
            s.goal_hyp = if key.is_some() {
                let p = perm.as_ref().expect("keyed submit computed a permutation");
                Some(
                    witness
                        .take()
                        .unwrap_or_else(|| permute_relation(&goal_hypothesis(&goal), p)),
                )
            } else {
                None
            };
            s.fuel_cap = fuel_cap;
            s.priority = priority;
            s.started = t0;
            s.generation
        };
        if let Some(k) = key {
            shard.cache.insert_inflight(k, slot);
        }
        shard.stepping += 1;
        drop(shard);
        // Fragment routing: a per-query decide override is the
        // submitter's explicit word and wins; otherwise classify Σ and
        // run weakly acyclic queries on the terminating route (chase
        // only, unbounded budgets). Linear/guarded routes only count.
        let dcfg = match decide {
            Some(d) => d,
            None => {
                let base = core.cfg.decide.clone();
                if core.cfg.classify {
                    let route = classify(&sigma).route();
                    core.stats.class_routed[route.index()].fetch_add(1, Ordering::Relaxed);
                    routed_decide_config(&base, route)
                } else {
                    base
                }
            }
        };
        let task = if core.cfg.group {
            match core.try_join_group(sigma, goal, pool, dcfg) {
                Ok(member) => ServiceTask::Group(Box::new(member)),
                Err(back) => {
                    let (sigma, goal, pool, d) = *back;
                    ServiceTask::Decide(Box::new(DecideTask::new(sigma, goal, pool, d)))
                }
            }
        } else {
            ServiceTask::Decide(Box::new(DecideTask::new(sigma, goal, pool, dcfg)))
        };
        let token = task.cancel_token();
        let mut shard = self.lock_shard(shard_idx);
        shard.stepping -= 1;
        shard.slots[slot as usize].cancel = Some(token.clone());
        // `cancel()` may have arrived while the task was being built (the
        // slot was `Stepping`, and the token wasn't installed yet, so it
        // could neither be tripped nor sweep the waiters). Honor it now:
        // non-detached waiters that coalesced in the window are woken
        // `Cancelled`, and only a detached survivor keeps the job alive.
        if shard.slots[slot as usize].cancel_requested
            && !self.cancel_waiter_sweep(&mut shard, slot)
        {
            token.cancel();
            let handle = self.handle(shard_idx, slot, &shard);
            core.cancel_slot(&mut shard, slot);
            drop(shard);
            self.notify_shard(shard_idx);
            return handle;
        }
        shard.slots[slot as usize].state = JobState::Running(task);
        shard.queue.push(RunEntry {
            priority,
            seq: std::cmp::Reverse(core.seq.fetch_add(1, Ordering::Relaxed)),
            slot,
            generation,
        });
        core.queue_depth[shard_idx].fetch_add(1, Ordering::Relaxed);
        let handle = self.handle(shard_idx, slot, &shard);
        drop(shard);
        // Queue transition: wake anything parked on this shard or idling.
        self.notify_shard(shard_idx);
        handle
    }

    fn handle(&self, shard_idx: usize, slot: u32, shard: &Shard) -> JobHandle {
        JobHandle {
            client: self.clone(),
            id: JobId {
                shard: shard_idx as u32,
                slot,
                generation: shard.slots[slot as usize].generation,
            },
        }
    }

    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, Shard> {
        self.core.shards[idx].shard.lock().expect("shard lock")
    }

    /// Wakes waiters parked on shard `idx` and idle workers (called after
    /// any completion, cancellation, expiry, or queue transition there).
    fn notify_shard(&self, idx: usize) {
        self.core.shards[idx].cv.notify_all();
        self.core.idle_cv.notify_all();
    }

    /// Parks the calling thread on shard `idx`'s condvar until a sweep
    /// there lands (or the timeout backstop fires). Returns immediately
    /// if no thread holds a claim on the shard.
    fn park_on_shard(&self, idx: usize) {
        let cell = &self.core.shards[idx];
        let guard = cell.shard.lock().expect("shard lock");
        if guard.stepping == 0 {
            // The claim landed between our sweep and this park; re-check.
            return;
        }
        self.core.stats.parked.fetch_add(1, Ordering::Relaxed);
        let _ = cell.cv.wait_timeout(guard, PARK_TIMEOUT);
    }

    /// Parks an idle `run_to_completion` worker until any completion or
    /// queue transition anywhere (or the timeout backstop). Completions
    /// notify `idle_cv` without taking the `idle` mutex, so a wakeup can
    /// race this wait; the timeout bounds the resulting stall.
    fn park_idle(&self) {
        let core = &*self.core;
        let guard = core.idle.lock().expect("idle lock");
        if core.inflight.load(Ordering::Relaxed) == 0 {
            return;
        }
        core.stats.parked.fetch_add(1, Ordering::Relaxed);
        let _ = core.idle_cv.wait_timeout(guard, PARK_TIMEOUT);
    }

    /// The job's current status. Cheap; never advances work. A retired id
    /// answers [`JobStatus::Retired`]; so does an id whose shard or slot
    /// doesn't exist here. Ids are only meaningful against the service
    /// that issued them (see [`JobId`]) — a foreign id that happens to be
    /// in range reads whatever job lives in that slot.
    pub fn status(&self, id: JobId) -> JobStatus {
        let Some(cell) = self.core.shards.get(id.shard as usize) else {
            return JobStatus::Retired;
        };
        let shard = cell.shard.lock().expect("shard lock");
        let Some(slot) = shard.slots.get(id.slot as usize) else {
            return JobStatus::Retired;
        };
        if slot.generation != id.generation {
            return JobStatus::Retired;
        }
        match &slot.state {
            JobState::Finished(outcome) if outcome.cancelled => JobStatus::Cancelled,
            JobState::Finished(outcome) => JobStatus::Done(outcome.clone()),
            JobState::Vacant => JobStatus::Retired,
            _ => JobStatus::Pending,
        }
    }

    /// The stored outcome of a finished job (cancelled or not), if any.
    fn outcome_snapshot(&self, id: JobId) -> Option<JobOutcome> {
        let cell = self.core.shards.get(id.shard as usize)?;
        let shard = cell.shard.lock().expect("shard lock");
        let slot = shard.slots.get(id.slot as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        match &slot.state {
            JobState::Finished(outcome) => Some(outcome.clone()),
            _ => None,
        }
    }

    /// One fair sweep of shard `idx`: claims every runnable job, steps
    /// each for (at most) one fuel slice outside the lock, then records
    /// completions and notifies parked waiters. Safe to call from any
    /// number of threads — concurrent callers on the same shard see
    /// [`ShardStep::Idle`] and should park or retry.
    ///
    /// # Panics
    /// If `idx >= self.num_shards()`.
    pub fn step_shard(&self, idx: usize) -> ShardStep {
        self.step_shard_limited(idx, usize::MAX)
    }

    /// As [`ImplicationClient::step_shard`] but claiming at most
    /// `max_claims` jobs — bounded batches keep a queue populated for
    /// work stealing and let pinned workers interleave with thieves.
    fn step_shard_limited(&self, idx: usize, max_claims: usize) -> ShardStep {
        let core = &*self.core;
        let slice = core.cfg.slice_fuel.max(1);
        let mut claimed: Vec<(u32, ServiceTask, usize)> = Vec::new();
        let mut fuel_out = false;
        let mut resolved_any = false;
        {
            let mut shard = self.lock_shard(idx);
            while claimed.len() < max_claims {
                let Some(entry) = shard.queue.pop() else { break };
                core.queue_depth[idx].fetch_sub(1, Ordering::Relaxed);
                let si = entry.slot as usize;
                let valid = shard.slots[si].generation == entry.generation
                    && matches!(shard.slots[si].state, JobState::Running(_));
                if !valid {
                    continue; // stale: retired, expired, cancelled, or finished
                }
                // A cancelled job (token tripped) dies right here without
                // burning a slice.
                if shard.slots[si].dying() {
                    let JobState::Running(_task) =
                        std::mem::replace(&mut shard.slots[si].state, JobState::Stepping)
                    else {
                        unreachable!("validated Running above")
                    };
                    core.cancel_slot(&mut shard, entry.slot);
                    resolved_any = true;
                    continue;
                }
                // Per-job fuel cap: a capped-out job expires right here.
                let cap_rem = shard.slots[si]
                    .fuel_cap
                    .map(|c| c.saturating_sub(shard.slots[si].fuel_spent));
                if cap_rem == Some(0) {
                    let JobState::Running(_task) =
                        std::mem::replace(&mut shard.slots[si].state, JobState::Stepping)
                    else {
                        unreachable!("validated Running above")
                    };
                    core.expire_slot(&mut shard, entry.slot);
                    resolved_any = true;
                    continue;
                }
                let want = cap_rem.map_or(slice, |c| slice.min(c.try_into().unwrap_or(usize::MAX)));
                let granted = core.reserve_fuel(want);
                if granted == 0 {
                    shard.queue.push(entry);
                    core.queue_depth[idx].fetch_add(1, Ordering::Relaxed);
                    fuel_out = true;
                    break;
                }
                let JobState::Running(task) =
                    std::mem::replace(&mut shard.slots[si].state, JobState::Stepping)
                else {
                    unreachable!("validated Running above")
                };
                claimed.push((entry.slot, task, granted));
            }
            shard.stepping += claimed.len();
            if claimed.is_empty() {
                let result = if fuel_out {
                    ShardStep::FuelExhausted
                } else if resolved_any {
                    ShardStep::Progressed
                } else if shard.stepping > 0 {
                    ShardStep::Idle
                } else {
                    ShardStep::Empty
                };
                drop(shard);
                if resolved_any {
                    self.notify_shard(idx);
                }
                return result;
            }
        }
        core.stats.sweeps.fetch_add(1, Ordering::Relaxed);
        let timing = core.telemetry.enabled();
        let stepped: Vec<(u32, ServiceTask, DecideStatus, u64, u64)> = claimed
            .into_iter()
            .map(|(slot, mut task, granted)| {
                let before = task.fuel_spent();
                let t0 = timing.then(Instant::now);
                let status = task.step(granted);
                let step_nanos = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                let used = task.fuel_spent() - before;
                core.refund_fuel(granted as u64 - used.min(granted as u64));
                core.stats.fuel_spent.fetch_add(used, Ordering::Relaxed);
                (slot, task, status, used, step_nanos)
            })
            .collect();
        let mut shard = self.lock_shard(idx);
        shard.stepping -= stepped.len();
        for (slot, task, status, used, step_nanos) in stepped {
            let si = slot as usize;
            shard.slots[si].fuel_spent += used;
            shard.slots[si].run_nanos += step_nanos;
            // Per-slice profile: cheap counter reads, kept even with
            // metrics off so PROGRESS streaming works unconditionally.
            shard.slots[si].progress = task.progress_snapshot();
            match status {
                DecideStatus::Pending if shard.slots[si].dying() => {
                    core.cancel_slot(&mut shard, slot)
                }
                DecideStatus::Pending => {
                    let priority = shard.slots[si].priority;
                    let generation = shard.slots[si].generation;
                    shard.slots[si].state = JobState::Running(task);
                    shard.queue.push(RunEntry {
                        priority,
                        seq: std::cmp::Reverse(core.seq.fetch_add(1, Ordering::Relaxed)),
                        slot,
                        generation,
                    });
                    core.queue_depth[idx].fetch_add(1, Ordering::Relaxed);
                }
                DecideStatus::Done(_) => {
                    let decision = task.finish();
                    if decision.cancelled {
                        core.cancel_slot(&mut shard, slot);
                    } else {
                        core.complete_slot(&mut shard, slot, decision);
                    }
                }
            }
        }
        drop(shard);
        // Completions landed and/or jobs requeued: wake parked waiters.
        self.notify_shard(idx);
        ShardStep::Progressed
    }

    /// One fair sweep over every shard (the single-threaded driver the
    /// streaming front end uses). Returns `false` once nothing more can
    /// run: every shard is drained, or the global fuel budget is spent —
    /// in the latter case call [`ImplicationClient::run_to_completion`] to
    /// expire the leftovers.
    pub fn tick(&self) -> bool {
        let mut any = false;
        let mut fuel_out = false;
        for idx in 0..self.core.shards.len() {
            match self.step_shard(idx) {
                ShardStep::Progressed | ShardStep::Idle => any = true,
                ShardStep::FuelExhausted => fuel_out = true,
                ShardStep::Empty => {}
            }
        }
        any && !fuel_out
    }

    /// Drives every in-flight job to an answer: sweeps all shards until
    /// they drain, then — if a fuel budget cut the run short — answers the
    /// leftovers `Unknown` (an honest answer for an undecidable problem
    /// under a finite budget).
    ///
    /// With [`ServiceConfig::workers`]` > 1`, each worker is pinned to a
    /// stripe of home shards; an idle worker steals slices from the
    /// deepest foreign queue when [`ServiceConfig::steal`] is on, and
    /// parks on a condvar (instead of yield-spinning) when there is
    /// nothing to claim anywhere.
    pub fn run_to_completion(&self) {
        let workers = self.core.cfg.workers.max(1);
        self.core.draining.store(false, Ordering::Relaxed);
        if workers == 1 {
            self.drive_serial();
        } else {
            std::thread::scope(|scope| {
                for w in 0..workers {
                    scope.spawn(move || self.worker_loop(w, workers));
                }
            });
        }
        if self.pending_jobs() > 0 {
            self.expire_all();
        }
    }

    /// The single-threaded driver: full sweeps until drained, parking on
    /// a shard's condvar when an external clone holds its only claim.
    fn drive_serial(&self) {
        loop {
            let mut progressed = false;
            let mut fuel_out = false;
            let mut claimed_elsewhere = None;
            for idx in 0..self.core.shards.len() {
                match self.step_shard(idx) {
                    ShardStep::Progressed => progressed = true,
                    ShardStep::Idle => claimed_elsewhere = Some(idx),
                    ShardStep::Empty => {}
                    ShardStep::FuelExhausted => fuel_out = true,
                }
            }
            if fuel_out || (!progressed && claimed_elsewhere.is_none()) {
                break;
            }
            // Park only when the *whole* sweep was starved by a claim an
            // external clone holds — a pass that progressed runnable
            // work elsewhere must not throttle itself on the condvar.
            if !progressed {
                if let Some(idx) = claimed_elsewhere {
                    self.park_on_shard(idx);
                }
            }
        }
    }

    /// One pinned worker of a multi-worker `run_to_completion`: sweeps
    /// its home stripe (one claim per shard per pass, so queues stay
    /// populated for thieves), steals when idle, parks when starved,
    /// exits when no job is in flight anywhere or fuel ran out.
    fn worker_loop(&self, w: usize, total: usize) {
        let core = &*self.core;
        let n = core.shards.len();
        let home: Vec<usize> = (0..n).filter(|i| i % total == w).collect();
        loop {
            let mut progressed = false;
            let mut fuel_out = false;
            for &idx in &home {
                match self.step_shard_limited(idx, 1) {
                    ShardStep::Progressed => progressed = true,
                    ShardStep::Idle | ShardStep::Empty => {}
                    ShardStep::FuelExhausted => fuel_out = true,
                }
            }
            // A spent fuel budget must stop every worker *consistently* —
            // a lone exit would orphan this worker's home stripe for
            // steal-off peers, who cannot observe FuelExhausted through
            // their own (empty) shards and would park on `inflight > 0`
            // forever while `expire_all` waits for them to join. Latch
            // the drain and wake the parked.
            if fuel_out || core.fuel_drained() {
                core.draining.store(true, Ordering::Relaxed);
                core.idle_cv.notify_all();
            }
            if core.draining.load(Ordering::Relaxed) {
                break;
            }
            if !progressed && core.cfg.steal {
                progressed = self.try_steal(&home);
            }
            if !progressed {
                if core.inflight.load(Ordering::Relaxed) == 0 {
                    break;
                }
                self.park_idle();
            }
        }
    }

    /// Steals one fuel slice from the deepest foreign queue. Only the CPU
    /// work migrates: the job's slot, key, and waiters stay in the victim
    /// shard, so `JobId`s, coalescing, and the cache are unaffected.
    fn try_steal(&self, home: &[usize]) -> bool {
        let n = self.core.shards.len();
        let mut victim: Option<(usize, usize)> = None;
        for idx in 0..n {
            if home.contains(&idx) {
                continue;
            }
            // Lock-free depth read (the atomic mirror), so idle thieves
            // scanning every millisecond never contend on the hot
            // victim's mutex; the claim below re-validates everything
            // under the victim's lock.
            let depth = self.core.queue_depth[idx].load(Ordering::Relaxed);
            if depth > 0 && victim.is_none_or(|(_, d)| depth > d) {
                victim = Some((idx, depth));
            }
        }
        let Some((idx, _)) = victim else { return false };
        if matches!(self.step_shard_limited(idx, 1), ShardStep::Progressed) {
            self.core.stats.steals.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Answers every still-pending job `Unknown` (budget spent).
    /// `run_to_completion` joins its own workers before calling this, but
    /// *external* client clones may still hold claimed (`Stepping`) tasks
    /// mid-slice — wait those out per shard first (no new claims can
    /// start once the fuel budget is spent, so the wait is bounded by one
    /// in-flight slice per claimant).
    fn expire_all(&self) {
        for idx in 0..self.core.shards.len() {
            let mut shard = loop {
                let shard = self.lock_shard(idx);
                if shard.stepping == 0 {
                    break shard;
                }
                drop(shard);
                std::thread::yield_now();
            };
            let running: Vec<u32> = shard
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s.state, JobState::Running(_)))
                .map(|(i, _)| i as u32)
                .collect();
            for slot in running {
                let JobState::Running(_task) =
                    std::mem::replace(&mut shard.slots[slot as usize].state, JobState::Stepping)
                else {
                    unreachable!("collected Running above")
                };
                self.core.expire_slot(&mut shard, slot);
            }
            // Leaders expired above resolved their waiters; any survivor
            // would mean a waiter without a live leader — a bug.
            debug_assert!(
                !shard
                    .slots
                    .iter()
                    .any(|s| matches!(s.state, JobState::Waiting { .. })),
                "expire_all left an orphaned coalesced waiter"
            );
            drop(shard);
            self.notify_shard(idx);
        }
    }

    /// Expires one pending job to `Unknown` (used by [`JobHandle::wait`]
    /// when the global budget runs dry). Returns `false` if the job is
    /// currently claimed by a stepping thread — retry after it lands.
    fn expire_job(&self, id: JobId) -> bool {
        let mut shard = self.lock_shard(id.shard as usize);
        let si = id.slot as usize;
        if shard.slots[si].generation != id.generation {
            return true; // already gone
        }
        let done = match shard.slots[si].state {
            JobState::Running(_) => {
                let JobState::Running(_task) =
                    std::mem::replace(&mut shard.slots[si].state, JobState::Stepping)
                else {
                    unreachable!("matched Running above")
                };
                self.core.expire_slot(&mut shard, id.slot);
                true
            }
            JobState::Waiting { leader } => {
                if let Some(ws) = shard.waiters.get_mut(&leader) {
                    ws.retain(|&w| w != id.slot);
                }
                let outcome = unknown_outcome(shard.slots[si].fuel_spent);
                self.core.stats.expired.fetch_add(1, Ordering::Relaxed);
                self.core.record_answer(&outcome);
                self.core.observe_waiter(&shard.slots[si], &outcome);
                self.core.job_resolved();
                shard.slots[si].state = JobState::Finished(outcome);
                self.drop_keepalive(&mut shard, leader);
                true
            }
            JobState::Stepping => false,
            JobState::Finished(_) | JobState::Vacant => true,
        };
        drop(shard);
        if done {
            self.notify_shard(id.shard as usize);
        }
        done
    }

    /// Cancels one job: trips its task's `CancelToken` so the computation
    /// stops within one fuel slice, and resolves it (and its non-detached
    /// coalesced waiters) to the defined [`JobStatus::Cancelled`].
    /// Waiters that [`JobHandle::detach`]ed beforehand keep the
    /// computation alive and receive the real answer; the canceller's own
    /// view still resolves `Cancelled` when the job lands. Cancelling a
    /// finished (or retired) job is a no-op.
    fn cancel(&self, id: JobId) {
        let Some(cell) = self.core.shards.get(id.shard as usize) else {
            return;
        };
        let mut shard = cell.shard.lock().expect("shard lock");
        let si = id.slot as usize;
        if si >= shard.slots.len() || shard.slots[si].generation != id.generation {
            return;
        }
        match shard.slots[si].state {
            JobState::Vacant | JobState::Finished(_) => return,
            JobState::Waiting { leader } => {
                if let Some(ws) = shard.waiters.get_mut(&leader) {
                    ws.retain(|&w| w != id.slot);
                }
                let outcome = cancelled_outcome(shard.slots[si].fuel_spent);
                self.core.record_answer(&outcome);
                self.core.observe_waiter(&shard.slots[si], &outcome);
                self.core.job_resolved();
                shard.slots[si].state = JobState::Finished(outcome);
                self.drop_keepalive(&mut shard, leader);
            }
            JobState::Running(_) | JobState::Stepping => {
                if shard.slots[si].cancel_requested {
                    return; // idempotent
                }
                shard.slots[si].cancel_requested = true;
                // Wake non-detached waiters now with the defined status;
                // detached waiters keep the computation alive. If none
                // remain, the leader dies too (immediately when
                // unclaimed; within its in-flight slice when claimed).
                if !self.cancel_waiter_sweep(&mut shard, id.slot) {
                    self.kill_cancelled_leader(&mut shard, id.slot);
                }
            }
        }
        drop(shard);
        self.notify_shard(id.shard as usize);
    }

    /// Cancels every job still in flight (running, claimed, or
    /// coalesced-waiting) and returns how many were asked to stop. Each
    /// cancellation goes through the same path [`JobHandle::cancel`]
    /// uses, so waiter sweeps, detached keep-alives, and idempotence all
    /// hold; a subsequent [`run_to_completion`](Self::run_to_completion)
    /// then lands the stragglers within one fuel slice each. This is the
    /// drain-deadline backstop for shutdown paths: answer what finished,
    /// cancel the rest, never hang.
    pub fn cancel_pending(&self) -> usize {
        let mut ids = Vec::new();
        for (sidx, cell) in self.core.shards.iter().enumerate() {
            let shard = cell.shard.lock().expect("shard lock");
            for (slot, s) in shard.slots.iter().enumerate() {
                if matches!(
                    s.state,
                    JobState::Running(_) | JobState::Stepping | JobState::Waiting { .. }
                ) {
                    ids.push(JobId {
                        shard: sidx as u32,
                        slot: slot as u32,
                        generation: s.generation,
                    });
                }
            }
        }
        let n = ids.len();
        for id in ids {
            self.cancel(id);
        }
        n
    }

    /// Resolves a cancelled leader's non-detached waiters `Cancelled`,
    /// keeping the detached ones on the list. Returns `true` if any
    /// detached waiter remains to keep the computation alive.
    fn cancel_waiter_sweep(&self, shard: &mut Shard, leader: u32) -> bool {
        let mut keep = Vec::new();
        for w in shard.waiters.remove(&leader).unwrap_or_default() {
            if shard.slots[w as usize].detached {
                keep.push(w);
            } else {
                let outcome = cancelled_outcome(0);
                self.core.record_answer(&outcome);
                self.core.observe_waiter(&shard.slots[w as usize], &outcome);
                self.core.job_resolved();
                shard.slots[w as usize].state = JobState::Finished(outcome);
            }
        }
        let keepalive = !keep.is_empty();
        if keepalive {
            shard.waiters.insert(leader, keep);
        }
        keepalive
    }

    /// Trips a cancel-requested leader's token, and resolves it on the
    /// spot when it is unclaimed (a claimed leader's in-flight slice
    /// observes the token, or the landing code sees the request, within
    /// one slice).
    fn kill_cancelled_leader(&self, shard: &mut Shard, leader: u32) {
        let li = leader as usize;
        if let Some(token) = &shard.slots[li].cancel {
            token.cancel();
        }
        if matches!(shard.slots[li].state, JobState::Running(_)) {
            let JobState::Running(_task) =
                std::mem::replace(&mut shard.slots[li].state, JobState::Stepping)
            else {
                unreachable!("matched Running above")
            };
            self.core.cancel_slot(shard, leader);
        }
    }

    /// Called after a waiter leaves `leader`'s coalescing list for any
    /// reason (retired, cancelled, expired): if the leader's owner had
    /// already cancelled and the departing waiter was the last one
    /// keeping the computation alive, the cancel finally takes effect —
    /// otherwise a cancelled-but-kept-alive job would burn its whole
    /// budget with no interested party left (and the owner's repeat
    /// `cancel()` would no-op on the idempotency guard).
    fn drop_keepalive(&self, shard: &mut Shard, leader: u32) {
        if shard.waiters.get(&leader).is_some_and(|ws| !ws.is_empty()) {
            return;
        }
        shard.waiters.remove(&leader);
        let li = leader as usize;
        if shard.slots[li].cancel_requested
            && matches!(
                shard.slots[li].state,
                JobState::Running(_) | JobState::Stepping
            )
        {
            self.kill_cancelled_leader(shard, leader);
        }
    }

    /// Marks a job as detached: if it is a coalesced waiter and its
    /// leader's owner cancels, this job keeps the computation alive and
    /// still receives the answer. Must be set before the cancel arrives.
    fn detach(&self, id: JobId) {
        let Some(cell) = self.core.shards.get(id.shard as usize) else {
            return;
        };
        let mut shard = cell.shard.lock().expect("shard lock");
        let si = id.slot as usize;
        if si >= shard.slots.len() || shard.slots[si].generation != id.generation {
            return;
        }
        shard.slots[si].detached = true;
    }

    /// Frees a job's storage. Pending jobs keep running to completion
    /// (their answer still feeds the cache and any coalesced waiters) but
    /// their outcome is dropped on arrival; cancel first to stop the
    /// computation itself.
    fn retire(&self, id: JobId) {
        let mut shard = self.lock_shard(id.shard as usize);
        let si = id.slot as usize;
        if shard.slots[si].generation != id.generation {
            return;
        }
        self.core.stats.retired.fetch_add(1, Ordering::Relaxed);
        match shard.slots[si].state {
            JobState::Finished(_) => shard.free_slot(id.slot),
            JobState::Waiting { leader } => {
                if let Some(ws) = shard.waiters.get_mut(&leader) {
                    ws.retain(|&w| w != id.slot);
                }
                // An abandoned waiter lands no answer; record its
                // latency as cancelled so every submission shows up in
                // exactly one latency family.
                self.core
                    .observe_waiter(&shard.slots[si], &cancelled_outcome(0));
                self.core.job_resolved();
                shard.free_slot(id.slot);
                self.drop_keepalive(&mut shard, leader);
            }
            JobState::Running(_) | JobState::Stepping => {
                shard.slots[si].retired = true;
            }
            JobState::Vacant => {}
        }
    }
}

impl Core {
    /// Tries to enrol a query in a shared Σ-group saturation. `Ok` is a
    /// registered member (the group entry is pinned until the member
    /// drops); `Err` returns the query ingredients untouched for the
    /// private-task path — ungroupable queries (width 0, a decode
    /// mismatch) degrade gracefully rather than fail.
    #[allow(clippy::type_complexity)]
    fn try_join_group(
        &self,
        sigma: Vec<TdOrEgd>,
        goal: TdOrEgd,
        pool: ValuePool,
        dcfg: DecideConfig,
    ) -> Result<GroupMember, Box<(Vec<TdOrEgd>, TdOrEgd, ValuePool, DecideConfig)>> {
        let Some(gq) = group_query(&sigma, &goal) else {
            return Err(Box::new((sigma, goal, pool, dcfg)));
        };
        let mut reg = self.groups.lock().expect("group registry lock");
        reg.tick += 1;
        let tick = reg.tick;
        let entry = match reg.groups.get(&gq.key) {
            Some(e) => e.clone(),
            None => {
                let Some(decoded) = gq.key.decode() else {
                    return Err(Box::new((sigma, goal, pool, dcfg)));
                };
                let chase = ChaseTask::saturation(
                    &decoded.seed,
                    decoded.sigma,
                    decoded.pool,
                    dcfg.chase.clone(),
                );
                self.stats.group_chases.fetch_add(1, Ordering::Relaxed);
                let entry = Arc::new(GroupEntry {
                    state: Mutex::new(GroupState {
                        chase,
                        outcome: None,
                        decoder: decoded.decoder,
                    }),
                    members: AtomicUsize::new(0),
                    last_used: AtomicU64::new(tick),
                });
                // Capacity bound with in-flight pinning: only entries
                // with zero members are eviction candidates (LRU among
                // them), so the registry may transiently exceed capacity
                // while every entry is pinned — exactly the answer
                // cache's fresh-insert reserve.
                if reg.groups.len() >= reg.capacity {
                    let victim = reg
                        .groups
                        .iter()
                        .filter(|(_, e)| e.members.load(Ordering::Relaxed) == 0)
                        .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                        .map(|(k, _)| k.clone());
                    if let Some(k) = victim {
                        reg.groups.remove(&k);
                    }
                }
                reg.groups.insert(gq.key.clone(), entry.clone());
                entry
            }
        };
        entry.last_used.store(tick, Ordering::Relaxed);
        // Decode the member's goal into the group's value space. Still
        // under the registry lock (registry → state is the lock order);
        // goal decoding is a few map lookups, not chase work.
        let member_goal = {
            let mut guard = entry.state.lock().expect("group state lock");
            let state = &mut *guard;
            let words = gq.goal.clone();
            state.decoder.decode_goal(&words, state.chase.pool_mut())
        };
        let Some(member_goal) = member_goal else {
            return Err(Box::new((sigma, goal, pool, dcfg)));
        };
        entry.members.fetch_add(1, Ordering::Relaxed);
        self.stats.grouped.fetch_add(1, Ordering::Relaxed);
        Ok(GroupMember {
            entry,
            goal: member_goal,
            spec: Some((sigma, goal, pool, dcfg)),
            fallback: None,
            cancel: CancelToken::new(),
            fuel: 0,
            done: None,
            fallbacks: self.stats.group_fallbacks.clone(),
        })
    }

    /// Reserves up to `want` fuel units from the global budget; the
    /// granted amount may be smaller. Unused grant is refunded by the
    /// stepper.
    fn reserve_fuel(&self, want: usize) -> usize {
        if !self.metered {
            return want;
        }
        let mut granted = 0;
        let _ = self
            .fuel
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |rem| {
                granted = rem.min(want as u64) as usize;
                Some(rem - granted as u64)
            });
        granted
    }

    fn refund_fuel(&self, unused: u64) {
        if self.metered && unused > 0 {
            self.fuel.fetch_add(unused, Ordering::Relaxed);
        }
    }

    /// `true` when a metered global budget currently reads empty. A
    /// racing refund can restore a few units right after — callers using
    /// this to stop driving merely hand those crumbs to `expire_all`,
    /// the same outcome as a sweep observing `FuelExhausted` directly.
    fn fuel_drained(&self) -> bool {
        self.metered && self.fuel.load(Ordering::Relaxed) == 0
    }

    /// One scheduled job left the in-flight set (completed, expired,
    /// cancelled, or a waiter was retired); wakes idle workers.
    fn job_resolved(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        self.idle_cv.notify_all();
    }

    /// Records the histogram families for a *leader* landing (completed,
    /// expired, or cancelled): submit→resolve latency keyed by how it
    /// landed, the queue-wait vs run-time split, and fuel consumed.
    /// No-op when metrics are off (`started` is only stamped when they
    /// are on). Called under the shard lock, before the slot is freed.
    fn observe_landing(&self, slot: &JobSlot, kind: OutcomeKind) {
        let Some(t0) = slot.started else { return };
        let total = t0.elapsed().as_nanos() as u64;
        self.telemetry.record_latency(kind, total);
        self.telemetry.record_run_time(slot.run_nanos);
        self.telemetry
            .record_queue_wait(total.saturating_sub(slot.run_nanos));
        self.telemetry.record_fuel(slot.fuel_spent);
        self.telemetry.record_join(
            slot.progress.join_build_rows,
            slot.progress.join_probe_hits,
            slot.progress.parallel_shards,
        );
    }

    /// Records the landing of a coalesced waiter: it spends no fuel and
    /// is never stepped itself, so only latency (keyed by how it
    /// resolved: leader answered → hit, leader cancelled → cancelled,
    /// leader expired → expired) and a zero fuel sample are recorded.
    fn observe_waiter(&self, slot: &JobSlot, outcome: &JobOutcome) {
        let Some(t0) = slot.started else { return };
        let kind = if outcome.cancelled {
            OutcomeKind::Cancelled
        } else if outcome.from_cache {
            OutcomeKind::Hit
        } else {
            OutcomeKind::Expired
        };
        self.telemetry
            .record_latency(kind, t0.elapsed().as_nanos() as u64);
        self.telemetry.record_fuel(0);
    }

    /// Records a submit-time fast-path answer (goal-in-Σ, cache hit):
    /// hit latency, zero fuel.
    fn observe_fast(&self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.telemetry
                .record_latency(OutcomeKind::Hit, t0.elapsed().as_nanos() as u64);
            self.telemetry.record_fuel(0);
        }
    }

    /// Updates the answer histogram and completion count. Cancelled
    /// outcomes count toward `completed` and `cancelled`, not the
    /// yes/no/unknown histogram (they carry no answer).
    fn record_answer(&self, outcome: &JobOutcome) {
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        if outcome.cancelled {
            self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let counter = match outcome.implication {
            Answer::Yes => &self.stats.yes,
            Answer::No => &self.stats.no,
            Answer::Unknown => &self.stats.unknown,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Finishes a job from its decided task: records stats, fills the
    /// cache (bounded), wakes coalesced waiters. Called under the shard
    /// lock with the slot in `Stepping` state (task moved out and
    /// finished by the caller).
    fn complete_slot(&self, shard: &mut Shard, slot: u32, decision: Decision) {
        let si = slot as usize;
        let outcome = JobOutcome {
            implication: decision.implication,
            finite_implication: decision.finite_implication,
            counterexample: decision.counterexample,
            from_cache: false,
            fuel_spent: shard.slots[si].fuel_spent,
            cancelled: false,
        };
        self.record_answer(&outcome);
        self.observe_landing(&shard.slots[si], OutcomeKind::Miss);
        let key = shard.slots[si].key.take();
        let goal_hyp = shard.slots[si].goal_hyp.take();
        if let Some(k) = key {
            // Only definite answers are cached: Yes/No are certificates,
            // true of every isomorphic presentation of the query, while
            // Unknown is a budget artifact that could differ between
            // canonically equal submissions.
            if outcome.implication != Answer::Unknown {
                let g = goal_hyp.expect("keyed leader stores its witness");
                let answer = CachedAnswer {
                    implication: outcome.implication,
                    finite_implication: outcome.finite_implication,
                };
                if let Some(interned) = shard.cache.insert(k, answer, g, outcome.fuel_spent) {
                    self.cached_total.fetch_add(1, Ordering::Relaxed);
                    self.enforce_cache_bound(shard, Some(&interned));
                    // Persist the definite answer as it enters the cache
                    // (the log mirrors the insert path exactly, so
                    // Unknown/Cancelled/Expired can never reach disk). A
                    // failed append counts an error; the log itself
                    // degrades after repeated failures and traffic is
                    // never affected.
                    if let Some(log) = &self.persist {
                        if !log.append(&interned, answer, outcome.fuel_spent) {
                            self.stats.persist_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            } else {
                shard.cache.clear_inflight(&k);
            }
        }
        self.resolve_waiters(shard, slot, &outcome, true);
        self.job_resolved();
        if shard.slots[si].retired {
            shard.free_slot(slot);
        } else if shard.slots[si].cancel_requested {
            // Detached waiters kept the computation alive (and just got
            // the real answer above); the owner cancelled, so its own
            // view resolves Cancelled.
            self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            let cancelled = cancelled_outcome(shard.slots[si].fuel_spent);
            shard.slots[si].state = JobState::Finished(cancelled);
        } else {
            shard.slots[si].state = JobState::Finished(outcome);
        }
    }

    /// Force-answers a claimed slot `Unknown` (fuel exhaustion). Called
    /// under the shard lock with the slot in `Stepping` state.
    fn expire_slot(&self, shard: &mut Shard, slot: u32) {
        let outcome = unknown_outcome(shard.slots[slot as usize].fuel_spent);
        self.stats.expired.fetch_add(1, Ordering::Relaxed);
        self.abort_slot(shard, slot, outcome);
    }

    /// Resolves a claimed slot [`JobStatus::Cancelled`]. Called under the
    /// shard lock with the slot in `Stepping` state.
    fn cancel_slot(&self, shard: &mut Shard, slot: u32) {
        let outcome = cancelled_outcome(shard.slots[slot as usize].fuel_spent);
        self.abort_slot(shard, slot, outcome);
    }

    /// Shared tail of expiry and cancellation: records the outcome, drops
    /// the in-flight cache marker (answers from aborted runs are never
    /// cached: expiry reflects scheduling pressure, cancellation produced
    /// no answer), resolves waiters, and stores or frees the slot. An
    /// owner who had requested cancellation still sees `Cancelled`, even
    /// when what actually landed first was a fuel expiry.
    fn abort_slot(&self, shard: &mut Shard, slot: u32, outcome: JobOutcome) {
        let si = slot as usize;
        self.record_answer(&outcome);
        let kind = if outcome.cancelled {
            OutcomeKind::Cancelled
        } else {
            OutcomeKind::Expired
        };
        self.observe_landing(&shard.slots[si], kind);
        if let Some(k) = shard.slots[si].key.take() {
            shard.cache.clear_inflight(&k);
        }
        shard.slots[si].goal_hyp = None;
        self.resolve_waiters(shard, slot, &outcome, false);
        self.job_resolved();
        if shard.slots[si].retired {
            shard.free_slot(slot);
        } else if shard.slots[si].cancel_requested && !outcome.cancelled {
            self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            let cancelled = cancelled_outcome(shard.slots[si].fuel_spent);
            shard.slots[si].state = JobState::Finished(cancelled);
        } else {
            shard.slots[si].state = JobState::Finished(outcome);
        }
    }

    /// Wakes every job coalesced onto `leader` with its answers (or its
    /// cancelled/expired status). `from_leader_answer` is `true` only
    /// when the leader genuinely completed — waiters of an expired or
    /// cancelled leader are not labeled cache-served.
    fn resolve_waiters(
        &self,
        shard: &mut Shard,
        leader: u32,
        outcome: &JobOutcome,
        from_leader_answer: bool,
    ) {
        for w in shard.waiters.remove(&leader).unwrap_or_default() {
            debug_assert!(
                matches!(shard.slots[w as usize].state, JobState::Waiting { leader: l } if l == leader),
                "waiter list out of sync with job slots"
            );
            let waiter_outcome = JobOutcome {
                implication: outcome.implication,
                finite_implication: outcome.finite_implication,
                counterexample: None,
                from_cache: from_leader_answer,
                fuel_spent: 0,
                cancelled: outcome.cancelled,
            };
            self.record_answer(&waiter_outcome);
            self.observe_waiter(&shard.slots[w as usize], &waiter_outcome);
            self.job_resolved();
            shard.slots[w as usize].state = JobState::Finished(waiter_outcome);
        }
    }

    /// Evicts from `shard`'s cache slice until the global count is back
    /// under the configured capacity, never evicting `protect` (the entry
    /// just inserted — otherwise a capacity smaller than the shard count
    /// would make every fresh insert its own eviction victim while hot
    /// shards keep stale entries). Approximate global LRU: a shard only
    /// evicts entries it owns, so concurrent inserts elsewhere converge
    /// without cross-shard locking.
    fn enforce_cache_bound(&self, shard: &mut Shard, protect: Option<&Arc<QueryKey>>) {
        while self.cached_total.load(Ordering::Relaxed) > self.cfg.cache_capacity {
            if shard.cache.evict_one_protecting(protect) {
                self.cached_total.fetch_sub(1, Ordering::Relaxed);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break; // nothing local left to evict
            }
        }
    }
}

fn unknown_outcome(fuel_spent: u64) -> JobOutcome {
    JobOutcome {
        implication: Answer::Unknown,
        finite_implication: Answer::Unknown,
        counterexample: None,
        from_cache: false,
        fuel_spent,
        cancelled: false,
    }
}

fn cancelled_outcome(fuel_spent: u64) -> JobOutcome {
    JobOutcome {
        implication: Answer::Unknown,
        finite_implication: Answer::Unknown,
        counterexample: None,
        from_cache: false,
        fuel_spent,
        cancelled: true,
    }
}

fn shard_of(key: &QueryKey, nshards: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % nshards
}

/// A raw structural hash of `(Σ, σ)` for shard routing when the cache is
/// disabled: value handles and tableau shapes are hashed as submitted, no
/// canonicalization. Deterministic per submission but **not** invariant
/// under renaming — good enough to spread jobs across shards, which is
/// all routing needs.
fn raw_query_hash(sigma: &[TdOrEgd], goal: &TdOrEgd) -> u64 {
    fn dep<H: Hasher>(h: &mut H, d: &TdOrEgd) {
        match d {
            TdOrEgd::Td(t) => {
                0u8.hash(h);
                t.hypothesis().hash(h);
                t.conclusion().hash(h);
            }
            TdOrEgd::Egd(e) => {
                1u8.hash(h);
                e.hypothesis().hash(h);
                e.left().hash(h);
                e.right().hash(h);
            }
        }
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    sigma.len().hash(&mut h);
    for d in sigma {
        dep(&mut h, d);
    }
    dep(&mut h, goal);
    h.finish()
}

/// Owner of one submitted job's lifecycle. Poll it, block on it, cancel
/// it, or let it go — dropping the handle **retires** the job, freeing
/// its slot (and its stored outcome) in the service; the computation
/// itself still runs to completion so its answer can feed the cache and
/// coalesced waiters (use [`JobHandle::cancel`] to stop it).
///
/// Handles are deliberately not `Clone`: exactly one owner decides when
/// the outcome may be dropped.
pub struct JobHandle {
    client: ImplicationClient,
    id: JobId,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("id", &self.id).finish()
    }
}

impl JobHandle {
    /// The job's identity (remains valid for
    /// [`ImplicationClient::status`] until the handle is dropped; after
    /// that it reports [`JobStatus::Retired`]).
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The job's current status. Cheap; never advances work.
    pub fn poll(&self) -> JobStatus {
        self.client.status(self.id)
    }

    /// The job's current [`ProgressSnapshot`] (see
    /// [`ImplicationClient::job_progress`]). Cheap; never advances work.
    pub fn progress(&self) -> Option<ProgressSnapshot> {
        self.client.job_progress(self.id)
    }

    /// Cancels the job. When this handle is the last party interested in
    /// the computation, it stops within one fuel slice (cooperative
    /// token, checked at chase-round / search-attempt granularity; an
    /// unclaimed job stops immediately with zero extra fuel), its
    /// run-queue slot frees up, and the job resolves to the defined
    /// [`JobStatus::Cancelled`]. Non-detached coalesced waiters are
    /// woken `Cancelled` with it. The computation survives a cancel in
    /// two cases — only this handle's view resolves `Cancelled` then:
    /// this job is itself a *waiter* on a shared in-flight leader (the
    /// leader's owner still wants the answer), or detached waiters
    /// ([`JobHandle::detach`]) opted into keeping this leader's answer
    /// alive (it stops later, when the last of them departs).
    /// Cancelling a finished job is a no-op: it keeps its answer.
    pub fn cancel(&self) {
        self.client.cancel(self.id);
    }

    /// Opts this job into surviving its coalescing leader's
    /// cancellation: a detached waiter keeps the shared computation alive
    /// and still receives the real answer. Call before the leader's
    /// [`JobHandle::cancel`]; no effect on jobs that aren't coalesced.
    pub fn detach(&self) {
        self.client.detach(self.id);
    }

    /// Blocks until the job has an answer, **helping** while it waits:
    /// the calling thread steps the shard that owns this job (and only
    /// that shard — divergent jobs elsewhere cost it nothing), and when
    /// another thread holds the claim it parks on the shard's condvar
    /// until the slice lands instead of yield-spinning. Under a spent
    /// global fuel budget the job is expired to an honest `Unknown`; a
    /// cancelled job returns its stored outcome (`cancelled` set,
    /// answers `Unknown`).
    pub fn wait(&self) -> JobOutcome {
        loop {
            match self.poll() {
                JobStatus::Done(outcome) => return outcome,
                JobStatus::Cancelled => {
                    return self
                        .client
                        .outcome_snapshot(self.id)
                        .unwrap_or_else(|| cancelled_outcome(0));
                }
                JobStatus::Retired => {
                    unreachable!("a live handle's job cannot be retired")
                }
                JobStatus::Pending => {}
            }
            match self.client.step_shard(self.id.shard as usize) {
                ShardStep::Progressed => {}
                ShardStep::Idle => self.client.park_on_shard(self.id.shard as usize),
                ShardStep::Empty => std::thread::yield_now(),
                ShardStep::FuelExhausted => {
                    // May fail while another thread holds the task; park
                    // until its slice lands, then retry.
                    if !self.client.expire_job(self.id) {
                        self.client.park_on_shard(self.id.shard as usize);
                    }
                }
            }
        }
    }

    /// Retires the job now, freeing its slot in the service. Equivalent
    /// to dropping the handle; spelled out for call sites where the
    /// intent deserves a name.
    pub fn retire(self) {}
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        self.client.retire(self.id);
    }
}
