//! The concurrent implication service v2: cheap-to-clone client handles
//! over shared sharded state.
//!
//! # Why a shared-state client
//!
//! The paper proves no total algorithm decides typed-td implication, so
//! the system's value at scale is serving *many* fuel-bounded queries
//! concurrently. The v1 `ImplicationService` fought that goal: `submit`
//! and `tick` took `&mut self`, so one exclusive owner serialized every
//! submission and every sweep, and finished jobs plus cached answers
//! accumulated forever. v2 separates the immutable specification of a
//! query ([`QuerySpec`]) from its evaluation, PDQ-style:
//!
//! * [`ImplicationClient`] is a cheap [`Clone`] handle (an `Arc` over the
//!   shared core); every method takes `&self`, so any number of threads
//!   submit and step concurrently;
//! * [`JobHandle`] owns one job's lifecycle — [`JobHandle::poll`],
//!   blocking [`JobHandle::wait`] (which *helps*: it steps the shard that
//!   owns its job instead of spinning), and retire-on-drop so polled
//!   outcomes stop leaking;
//! * internally, jobs hash by canonical query key onto N **shards**, each
//!   with its own run queue, job slab, coalescing map, and answer-cache
//!   slice behind its own lock — submission and stepping on different
//!   shards never contend, and a `wait` only pays for the divergent
//!   neighbours that share its shard, not the whole service.
//!
//! # Dovetailing as scheduling
//!
//! Within a shard the scheduler is the same fair dovetailer as v1: every
//! runnable job gets one fuel slice per sweep (priority orders the claim,
//! FIFO breaks ties), so a terminating query is answered after boundedly
//! many sweeps no matter how many divergent neighbours it has —
//! starvation-freedom is exactly the fairness clause of the classical
//! dovetailing argument. Per-job and global fuel budgets convert "never
//! returns" into the honest third answer `Unknown`.
//!
//! # The bounded answer cache
//!
//! Jobs are keyed by the canonical form of `(Σ, σ)` ([`crate::canon`]);
//! finished answers are recorded under their key with service-wide
//! LRU/cost-aware eviction ([`crate::cache`]), identical in-flight queries
//! coalesce onto the running leader (coalesced entries are pinned, never
//! evicted), and a goal that is canonically an *element* of Σ is answered
//! `Yes` at submit time without scheduling at all. Hits, evictions, and
//! the fast path are all surfaced in [`ServiceStats`].

use crate::cache::{goal_hypothesis, CachedAnswer, Probe, ShardCache};
use crate::canon::{query_parts, QueryKey};
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use typedtd_chase::{Answer, DecideConfig, DecideStatus, DecideTask};
use typedtd_dependencies::TdOrEgd;
use typedtd_relational::{isomorphic, FxHashMap, FxHashSet, Relation, ValuePool};

/// Service-wide knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Default per-query decision budgets (chase + search); a
    /// [`QuerySpec::decide_config`] override takes precedence per job.
    pub decide: DecideConfig,
    /// Fuel units (chase rounds / search attempts) granted to a job per
    /// shard sweep. Smaller slices preempt faster; larger slices amortize
    /// bookkeeping.
    pub slice_fuel: usize,
    /// Global fuel budget across all jobs; once spent, stepping reports
    /// fuel exhaustion and pending jobs are answered `Unknown` by
    /// [`ImplicationClient::run_to_completion`] / [`JobHandle::wait`].
    pub global_fuel: Option<u64>,
    /// Scheduler shards. Jobs hash by canonical key onto a shard;
    /// different shards submit and step without contending.
    pub shards: usize,
    /// Worker threads [`ImplicationClient::run_to_completion`] drives the
    /// shards with. `1` = the calling thread only. (Any number of
    /// *external* threads may also step concurrently through clones of
    /// the client.)
    pub workers: usize,
    /// Enable the canonical answer cache (and in-flight coalescing).
    pub cache: bool,
    /// Upper bound on cached answers across all shards; beyond it the
    /// least-recently-used cold entry is evicted (in-flight coalesced
    /// entries are pinned and never evicted).
    pub cache_capacity: usize,
    /// Re-verify every cache hit through the isomorphism machinery.
    pub verify_cache_hits: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            decide: DecideConfig::default(),
            slice_fuel: 8,
            global_fuel: None,
            shards: 8,
            workers: 1,
            cache: true,
            cache_capacity: 4096,
            verify_cache_hits: false,
        }
    }
}

/// Identity of a submitted job: shard, slot, and an ABA-guarding
/// generation. Retiring a job frees its slot for reuse; a stale id then
/// reports [`JobStatus::Retired`] instead of another job's answer.
///
/// A `JobId` is only meaningful against the service that issued it:
/// distinct services allocate slots and generations independently, so an
/// id carried across services can collide with an unrelated job there
/// (an out-of-range shard or slot still answers `Retired`, never a
/// panic).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct JobId {
    shard: u32,
    slot: u32,
    generation: u32,
}

/// A finished job's result.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Answer for unrestricted implication `Σ ⊨ σ`.
    pub implication: Answer,
    /// Answer for finite implication `Σ ⊨_f σ`.
    pub finite_implication: Answer,
    /// A finite counterexample when either answer is `No` and this job did
    /// the work itself (cache/coalesced answers carry no certificate: the
    /// certificate's values live in the original submitter's pool).
    pub counterexample: Option<Relation>,
    /// `true` if the answers came without fresh fuel: a cache hit, a
    /// coalesced leader's result, or the goal-in-Σ fast path.
    pub from_cache: bool,
    /// Fuel this job consumed (0 for cache hits).
    pub fuel_spent: u64,
}

/// Poll result for a job.
#[derive(Clone, Debug)]
pub enum JobStatus {
    /// Still in flight; keep stepping the service.
    Pending,
    /// Finished.
    Done(JobOutcome),
    /// The job was retired (its [`JobHandle`] dropped or
    /// [`JobHandle::retire`]d): its storage is freed and its outcome is
    /// gone. Polling a retired id is a defined, stable answer — never a
    /// panic, never another job's result.
    Retired,
}

/// Aggregate service counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs finished (including cache hits and expiries).
    pub completed: u64,
    /// Submissions answered instantly from the cache.
    pub cache_hits: u64,
    /// Submissions answered `Yes` at submit time because the goal is
    /// canonically an element of Σ (implication is reflexive). Rides the
    /// [`ServiceConfig::cache`] switch: with the cache off every job
    /// really runs.
    pub goal_in_sigma: u64,
    /// Submissions coalesced onto an identical in-flight job.
    pub coalesced: u64,
    /// Submissions that had to run (cache enabled but cold, or disabled).
    pub cache_misses: u64,
    /// Cache key hits rejected by isomorphism verification (should be 0;
    /// a nonzero count flags a canonicalization bug).
    pub verify_rejects: u64,
    /// Jobs force-answered `Unknown` by fuel exhaustion (global budget or
    /// a per-job [`QuerySpec::fuel_cap`]).
    pub expired: u64,
    /// Jobs retired (handle dropped or explicitly retired); their slots
    /// were freed for reuse.
    pub retired: u64,
    /// Cached answers evicted to keep the cache within
    /// [`ServiceConfig::cache_capacity`].
    pub evictions: u64,
    /// Total fuel spent across all jobs.
    pub fuel_spent: u64,
    /// Shard sweeps that stepped at least one job.
    pub sweeps: u64,
    /// Jobs answered `Yes` (unrestricted implication).
    pub yes: u64,
    /// Jobs answered `No`.
    pub no: u64,
    /// Jobs answered `Unknown`.
    pub unknown: u64,
}

impl ServiceStats {
    /// Fraction of cache lookups that hit: `hits / (hits + misses)`.
    /// Coalesced submissions and the goal-in-Σ fast path count as neither
    /// (they never probed a finished entry). `0.0` before any lookup.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// One query, fully specified: the immutable `(Σ, σ)` instance plus its
/// pool and per-query evaluation overrides. Build with [`QuerySpec::new`]
/// and the chained setters, then hand to [`ImplicationClient::submit`].
#[derive(Clone, Debug)]
pub struct QuerySpec {
    sigma: Vec<TdOrEgd>,
    goal: TdOrEgd,
    pool: ValuePool,
    priority: i32,
    fuel_cap: Option<u64>,
    decide: Option<DecideConfig>,
}

impl QuerySpec {
    /// A query `Σ ⊨(f) σ`. `pool` must be (a snapshot of) the pool the
    /// dependencies' values were interned in; each job owns its pool, so
    /// many jobs over unrelated pools can be in flight at once.
    pub fn new(sigma: Vec<TdOrEgd>, goal: TdOrEgd, pool: ValuePool) -> Self {
        Self {
            sigma,
            goal,
            pool,
            priority: 0,
            fuel_cap: None,
            decide: None,
        }
    }

    /// Scheduling priority (default 0; higher is claimed earlier within a
    /// sweep; FIFO among equals — fairness still guarantees every job one
    /// slice per sweep).
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Per-job fuel cap: once this job has spent `cap` fuel units it is
    /// answered `Unknown` (counted in [`ServiceStats::expired`]),
    /// regardless of the global budget.
    pub fn fuel_cap(mut self, cap: u64) -> Self {
        self.fuel_cap = Some(cap);
        self
    }

    /// Per-job decision budgets, overriding [`ServiceConfig::decide`].
    pub fn decide_config(mut self, cfg: DecideConfig) -> Self {
        self.decide = Some(cfg);
        self
    }
}

/// What one shard-stepping call accomplished.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShardStep {
    /// At least one job was stepped or completed.
    Progressed,
    /// Nothing claimable right now, but another thread holds claimed jobs
    /// from this shard — work is still in flight; yield and retry.
    Idle,
    /// The shard has no runnable or in-flight-stepping jobs.
    Empty,
    /// Runnable jobs exist but the global fuel budget is spent.
    FuelExhausted,
}

enum JobState {
    /// Free slot (on the shard's free list).
    Vacant,
    /// In flight, queued for its next slice.
    Running(Box<DecideTask>),
    /// Transiently claimed by a stepping thread.
    Stepping,
    /// Coalesced: waiting for the identical in-flight leader to finish.
    Waiting { leader: u32 },
    /// Finished; outcome retained until the handle retires it.
    Finished(JobOutcome),
}

struct JobSlot {
    generation: u32,
    state: JobState,
    /// Canonical key (when caching): where this job's answers get
    /// recorded, and whose in-flight marker it holds while running.
    key: Option<QueryKey>,
    /// Goal snapshot for cache insertion (keyed leaders only).
    goal: Option<TdOrEgd>,
    fuel_spent: u64,
    fuel_cap: Option<u64>,
    priority: i32,
    /// Handle dropped while the job was still in flight: on completion,
    /// feed cache and waiters but free the slot instead of storing the
    /// outcome.
    retired: bool,
}

/// Run-queue entry; max-heap order = higher priority first, then FIFO by
/// submission sequence. Stale entries (slot reused or no longer Running)
/// are skipped at claim time, which lets retire/expire leave them behind.
#[derive(PartialEq, Eq)]
struct RunEntry {
    priority: i32,
    seq: std::cmp::Reverse<u64>,
    slot: u32,
    generation: u32,
}

impl Ord for RunEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, self.seq).cmp(&(other.priority, other.seq))
    }
}

impl PartialOrd for RunEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Shard {
    slots: Vec<JobSlot>,
    free: Vec<u32>,
    queue: BinaryHeap<RunEntry>,
    /// Jobs currently claimed by stepping threads.
    stepping: usize,
    cache: ShardCache,
    /// Leader slot → coalesced waiter slots, resolved at completion.
    waiters: FxHashMap<u32, Vec<u32>>,
}

impl Shard {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            queue: BinaryHeap::new(),
            stepping: 0,
            cache: ShardCache::default(),
            waiters: FxHashMap::default(),
        }
    }

    fn alloc(&mut self, state: JobState) -> u32 {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize].state = state;
            i
        } else {
            self.slots.push(JobSlot {
                generation: 0,
                state,
                key: None,
                goal: None,
                fuel_spent: 0,
                fuel_cap: None,
                priority: 0,
                retired: false,
            });
            (self.slots.len() - 1) as u32
        }
    }

    fn free_slot(&mut self, idx: u32) {
        let s = &mut self.slots[idx as usize];
        s.state = JobState::Vacant;
        s.generation = s.generation.wrapping_add(1);
        s.key = None;
        s.goal = None;
        s.fuel_spent = 0;
        s.fuel_cap = None;
        s.priority = 0;
        s.retired = false;
        self.free.push(idx);
    }
}

#[derive(Default)]
struct AtomicStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    goal_in_sigma: AtomicU64,
    coalesced: AtomicU64,
    cache_misses: AtomicU64,
    verify_rejects: AtomicU64,
    expired: AtomicU64,
    retired: AtomicU64,
    evictions: AtomicU64,
    fuel_spent: AtomicU64,
    sweeps: AtomicU64,
    yes: AtomicU64,
    no: AtomicU64,
    unknown: AtomicU64,
}

struct Core {
    cfg: ServiceConfig,
    shards: Vec<Mutex<Shard>>,
    /// Remaining global fuel; `u64::MAX` means unmetered.
    fuel: AtomicU64,
    metered: bool,
    /// FIFO tiebreak for the priority queues.
    seq: AtomicU64,
    /// Finished cache entries across all shards (enforces the bound).
    cached_total: AtomicUsize,
    stats: AtomicStats,
}

/// A cheap-to-clone handle onto the shared implication service. All
/// methods take `&self`; clones share every shard, the cache, and the
/// stats. See the module docs for the design.
#[derive(Clone)]
pub struct ImplicationClient {
    core: Arc<Core>,
}

impl ImplicationClient {
    /// A fresh service with `cfg` knobs; the returned client is the first
    /// of any number of clones.
    pub fn new(cfg: ServiceConfig) -> Self {
        let nshards = cfg.shards.max(1);
        let fuel = cfg.global_fuel.unwrap_or(u64::MAX);
        let metered = cfg.global_fuel.is_some();
        Self {
            core: Arc::new(Core {
                shards: (0..nshards).map(|_| Mutex::new(Shard::new())).collect(),
                fuel: AtomicU64::new(fuel),
                metered,
                seq: AtomicU64::new(0),
                cached_total: AtomicUsize::new(0),
                stats: AtomicStats::default(),
                cfg,
            }),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.core.cfg
    }

    /// Number of scheduler shards (valid arguments to
    /// [`ImplicationClient::step_shard`]).
    pub fn num_shards(&self) -> usize {
        self.core.shards.len()
    }

    /// Aggregate counters (a consistent-enough snapshot: each counter is
    /// individually exact, cross-counter invariants may lag under
    /// concurrent stepping).
    pub fn stats(&self) -> ServiceStats {
        let s = &self.core.stats;
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServiceStats {
            submitted: ld(&s.submitted),
            completed: ld(&s.completed),
            cache_hits: ld(&s.cache_hits),
            goal_in_sigma: ld(&s.goal_in_sigma),
            coalesced: ld(&s.coalesced),
            cache_misses: ld(&s.cache_misses),
            verify_rejects: ld(&s.verify_rejects),
            expired: ld(&s.expired),
            retired: ld(&s.retired),
            evictions: ld(&s.evictions),
            fuel_spent: ld(&s.fuel_spent),
            sweeps: ld(&s.sweeps),
            yes: ld(&s.yes),
            no: ld(&s.no),
            unknown: ld(&s.unknown),
        }
    }

    /// Distinct canonical queries currently cached (always ≤
    /// [`ServiceConfig::cache_capacity`] once an insert's eviction pass
    /// has run).
    pub fn cache_len(&self) -> usize {
        self.core.cached_total.load(Ordering::Relaxed)
    }

    /// Jobs still in flight (running, claimed, or coalesced-waiting).
    pub fn pending_jobs(&self) -> usize {
        self.core
            .shards
            .iter()
            .map(|m| {
                let shard = m.lock().expect("shard lock");
                shard
                    .slots
                    .iter()
                    .filter(|s| {
                        matches!(
                            s.state,
                            JobState::Running(_) | JobState::Stepping | JobState::Waiting { .. }
                        )
                    })
                    .count()
            })
            .sum()
    }

    /// Job slots currently allocated (pending or finished-but-unretired).
    /// Retiring handles drives this back to 0 — the leak the v1 service
    /// could never recover.
    pub fn live_jobs(&self) -> usize {
        self.core
            .shards
            .iter()
            .map(|m| {
                let shard = m.lock().expect("shard lock");
                shard
                    .slots
                    .iter()
                    .filter(|s| !matches!(s.state, JobState::Vacant))
                    .count()
            })
            .sum()
    }

    /// Submits one query. Returns immediately: the goal-in-Σ fast path
    /// and cache hits are `Done` on the first poll, an identical in-flight
    /// query coalesces, anything else enters its shard's run queue.
    pub fn submit(&self, spec: QuerySpec) -> JobHandle {
        let core = &*self.core;
        core.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let QuerySpec {
            mut sigma,
            goal,
            pool,
            priority,
            fuel_cap,
            decide,
        } = spec;
        let parts = query_parts(&sigma, &goal);
        let shard_idx = shard_of(&parts.key, core.shards.len());
        let mut key = core.cfg.cache.then_some(parts.key);
        // Goal-in-Σ fast path: σ ∈ Σ up to isomorphism means Σ ⊨ σ and
        // Σ ⊨_f σ by reflexivity — answer before scheduling anything.
        // Gated with the cache (``cache: false`` means "really run every
        // job"), and under `verify_cache_hits` the key match is
        // cross-checked through the isomorphism machinery exactly like a
        // cache hit would be — a collision quarantines the key and runs
        // the job in isolation instead of serving an unverified Yes.
        if key.is_some() {
            if let Some(i) = parts.sigma_keys.iter().position(|k| *k == parts.goal_key) {
                if core.cfg.verify_cache_hits
                    && !isomorphic(&goal_hypothesis(&goal), &goal_hypothesis(&sigma[i]))
                {
                    core.stats.verify_rejects.fetch_add(1, Ordering::Relaxed);
                    key = None;
                } else {
                    core.stats.goal_in_sigma.fetch_add(1, Ordering::Relaxed);
                    let outcome = JobOutcome {
                        implication: Answer::Yes,
                        finite_implication: Answer::Yes,
                        counterexample: None,
                        from_cache: true,
                        fuel_spent: 0,
                    };
                    core.record_answer(&outcome);
                    let mut shard = self.lock_shard(shard_idx);
                    let slot = shard.alloc(JobState::Finished(outcome));
                    return self.handle(shard_idx, slot, &shard);
                }
            }
        }
        // Run the same Σ the key describes: canonically duplicate
        // dependencies are logically redundant (isomorphic constraints
        // are equivalent) but would inflate this job's per-round scan
        // relative to a dedup-submitted twin.
        let mut seen_deps = FxHashSet::default();
        let mut di = 0;
        sigma.retain(|_| {
            let keep = seen_deps.insert(parts.sigma_keys[di].clone());
            di += 1;
            keep
        });
        let mut shard = self.lock_shard(shard_idx);
        if let Some(k) = &key {
            match shard.cache.probe(k, &goal, core.cfg.verify_cache_hits) {
                Probe::Hit(answer) => {
                    core.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    let outcome = JobOutcome {
                        implication: answer.implication,
                        finite_implication: answer.finite_implication,
                        counterexample: None,
                        from_cache: true,
                        fuel_spent: 0,
                    };
                    core.record_answer(&outcome);
                    let slot = shard.alloc(JobState::Finished(outcome));
                    return self.handle(shard_idx, slot, &shard);
                }
                Probe::InFlight(leader) => {
                    core.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                    debug_assert!(
                        matches!(
                            shard.slots[leader as usize].state,
                            JobState::Running(_) | JobState::Stepping
                        ),
                        "in-flight entry must point at a live leader"
                    );
                    let slot = shard.alloc(JobState::Waiting { leader });
                    shard.waiters.entry(leader).or_default().push(slot);
                    return self.handle(shard_idx, slot, &shard);
                }
                Probe::Rejected => {
                    // Verification just proved this key collides with a
                    // non-isomorphic query (a canonicalization bug). The
                    // key cannot be trusted for *any* sharing: no
                    // coalescing onto an in-flight holder of it, no cache
                    // write under it. Run the job in isolation.
                    core.stats.verify_rejects.fetch_add(1, Ordering::Relaxed);
                    key = None;
                }
                Probe::Miss => {}
            }
        }
        core.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        // Install the slot claimed (`Stepping`) and the in-flight marker
        // under the lock, but build the task — chase-instance seeding,
        // index construction, O(Σ) work — *outside* it: concurrent
        // submitters and steppers on this shard must not serialize behind
        // setup. The marker already coalesces any identical twin onto
        // this slot, and `stepping` keeps drive loops reporting Idle (not
        // Empty) until the task is armed.
        let slot = shard.alloc(JobState::Stepping);
        let generation = {
            let s = &mut shard.slots[slot as usize];
            s.key = key.clone();
            s.goal = key.is_some().then(|| goal.clone());
            s.fuel_cap = fuel_cap;
            s.priority = priority;
            s.generation
        };
        if let Some(k) = key {
            shard.cache.insert_inflight(k, slot);
        }
        shard.stepping += 1;
        drop(shard);
        let dcfg = decide.unwrap_or_else(|| core.cfg.decide.clone());
        let task = DecideTask::new(sigma, goal, pool, dcfg);
        let mut shard = self.lock_shard(shard_idx);
        shard.stepping -= 1;
        shard.slots[slot as usize].state = JobState::Running(Box::new(task));
        shard.queue.push(RunEntry {
            priority,
            seq: std::cmp::Reverse(core.seq.fetch_add(1, Ordering::Relaxed)),
            slot,
            generation,
        });
        self.handle(shard_idx, slot, &shard)
    }

    fn handle(&self, shard_idx: usize, slot: u32, shard: &Shard) -> JobHandle {
        JobHandle {
            client: self.clone(),
            id: JobId {
                shard: shard_idx as u32,
                slot,
                generation: shard.slots[slot as usize].generation,
            },
        }
    }

    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, Shard> {
        self.core.shards[idx].lock().expect("shard lock")
    }

    /// The job's current status. Cheap; never advances work. A retired id
    /// answers [`JobStatus::Retired`]; so does an id whose shard or slot
    /// doesn't exist here. Ids are only meaningful against the service
    /// that issued them (see [`JobId`]) — a foreign id that happens to be
    /// in range reads whatever job lives in that slot.
    pub fn status(&self, id: JobId) -> JobStatus {
        let Some(mutex) = self.core.shards.get(id.shard as usize) else {
            return JobStatus::Retired;
        };
        let shard = mutex.lock().expect("shard lock");
        let Some(slot) = shard.slots.get(id.slot as usize) else {
            return JobStatus::Retired;
        };
        if slot.generation != id.generation {
            return JobStatus::Retired;
        }
        match &slot.state {
            JobState::Finished(outcome) => JobStatus::Done(outcome.clone()),
            JobState::Vacant => JobStatus::Retired,
            _ => JobStatus::Pending,
        }
    }

    /// One fair sweep of shard `idx`: claims every runnable job, steps
    /// each for (at most) one fuel slice outside the lock, then records
    /// completions. Safe to call from any number of threads — concurrent
    /// callers on the same shard see [`ShardStep::Idle`] and should yield.
    ///
    /// # Panics
    /// If `idx >= self.num_shards()`.
    pub fn step_shard(&self, idx: usize) -> ShardStep {
        let core = &*self.core;
        let slice = core.cfg.slice_fuel.max(1);
        let mut claimed: Vec<(u32, Box<DecideTask>, usize)> = Vec::new();
        let mut fuel_out = false;
        let mut expired_any = false;
        {
            let mut shard = self.lock_shard(idx);
            while let Some(entry) = shard.queue.pop() {
                let si = entry.slot as usize;
                let valid = shard.slots[si].generation == entry.generation
                    && matches!(shard.slots[si].state, JobState::Running(_));
                if !valid {
                    continue; // stale: retired, expired, or already finished
                }
                // Per-job fuel cap: a capped-out job expires right here.
                let cap_rem = shard.slots[si]
                    .fuel_cap
                    .map(|c| c.saturating_sub(shard.slots[si].fuel_spent));
                if cap_rem == Some(0) {
                    let JobState::Running(_task) =
                        std::mem::replace(&mut shard.slots[si].state, JobState::Stepping)
                    else {
                        unreachable!("validated Running above")
                    };
                    core.expire_slot(&mut shard, entry.slot);
                    expired_any = true;
                    continue;
                }
                let want = cap_rem.map_or(slice, |c| slice.min(c.try_into().unwrap_or(usize::MAX)));
                let granted = core.reserve_fuel(want);
                if granted == 0 {
                    shard.queue.push(entry);
                    fuel_out = true;
                    break;
                }
                let JobState::Running(task) =
                    std::mem::replace(&mut shard.slots[si].state, JobState::Stepping)
                else {
                    unreachable!("validated Running above")
                };
                claimed.push((entry.slot, task, granted));
            }
            shard.stepping += claimed.len();
            if claimed.is_empty() {
                return if fuel_out {
                    ShardStep::FuelExhausted
                } else if expired_any {
                    ShardStep::Progressed
                } else if shard.stepping > 0 {
                    ShardStep::Idle
                } else {
                    ShardStep::Empty
                };
            }
        }
        core.stats.sweeps.fetch_add(1, Ordering::Relaxed);
        let stepped: Vec<(u32, Box<DecideTask>, DecideStatus, u64)> = claimed
            .into_iter()
            .map(|(slot, mut task, granted)| {
                let before = task.fuel_spent();
                let status = task.step(granted);
                let used = task.fuel_spent() - before;
                core.refund_fuel(granted as u64 - used.min(granted as u64));
                core.stats.fuel_spent.fetch_add(used, Ordering::Relaxed);
                (slot, task, status, used)
            })
            .collect();
        let mut shard = self.lock_shard(idx);
        shard.stepping -= stepped.len();
        for (slot, task, status, used) in stepped {
            shard.slots[slot as usize].fuel_spent += used;
            match status {
                DecideStatus::Pending => {
                    let priority = shard.slots[slot as usize].priority;
                    let generation = shard.slots[slot as usize].generation;
                    shard.slots[slot as usize].state = JobState::Running(task);
                    shard.queue.push(RunEntry {
                        priority,
                        seq: std::cmp::Reverse(core.seq.fetch_add(1, Ordering::Relaxed)),
                        slot,
                        generation,
                    });
                }
                DecideStatus::Done(_) => core.complete_slot(&mut shard, slot, *task),
            }
        }
        ShardStep::Progressed
    }

    /// One fair sweep over every shard (the single-threaded driver the
    /// streaming front end uses). Returns `false` once nothing more can
    /// run: every shard is drained, or the global fuel budget is spent —
    /// in the latter case call [`ImplicationClient::run_to_completion`] to
    /// expire the leftovers.
    pub fn tick(&self) -> bool {
        let mut any = false;
        let mut fuel_out = false;
        for idx in 0..self.core.shards.len() {
            match self.step_shard(idx) {
                ShardStep::Progressed | ShardStep::Idle => any = true,
                ShardStep::FuelExhausted => fuel_out = true,
                ShardStep::Empty => {}
            }
        }
        any && !fuel_out
    }

    /// Drives every in-flight job to an answer: sweeps all shards (with
    /// [`ServiceConfig::workers`] threads when configured) until they
    /// drain, then — if a fuel budget cut the run short — answers the
    /// leftovers `Unknown` (an honest answer for an undecidable problem
    /// under a finite budget).
    pub fn run_to_completion(&self) {
        let workers = self.core.cfg.workers.max(1);
        let drive = || loop {
            let mut all_empty = true;
            let mut fuel_out = false;
            for idx in 0..self.core.shards.len() {
                match self.step_shard(idx) {
                    ShardStep::Progressed => all_empty = false,
                    ShardStep::Idle => {
                        all_empty = false;
                        std::thread::yield_now();
                    }
                    ShardStep::Empty => {}
                    ShardStep::FuelExhausted => fuel_out = true,
                }
            }
            if fuel_out || all_empty {
                break;
            }
        };
        if workers == 1 {
            drive();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(drive);
                }
            });
        }
        if self.pending_jobs() > 0 {
            self.expire_all();
        }
    }

    /// Answers every still-pending job `Unknown` (budget spent).
    /// `run_to_completion` joins its own workers before calling this, but
    /// *external* client clones may still hold claimed (`Stepping`) tasks
    /// mid-slice — wait those out per shard first (no new claims can
    /// start once the fuel budget is spent, so the wait is bounded by one
    /// in-flight slice per claimant).
    fn expire_all(&self) {
        for idx in 0..self.core.shards.len() {
            let mut shard = loop {
                let shard = self.lock_shard(idx);
                if shard.stepping == 0 {
                    break shard;
                }
                drop(shard);
                std::thread::yield_now();
            };
            let running: Vec<u32> = shard
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s.state, JobState::Running(_)))
                .map(|(i, _)| i as u32)
                .collect();
            for slot in running {
                let JobState::Running(_task) =
                    std::mem::replace(&mut shard.slots[slot as usize].state, JobState::Stepping)
                else {
                    unreachable!("collected Running above")
                };
                self.core.expire_slot(&mut shard, slot);
            }
            // Leaders expired above resolved their waiters; any survivor
            // would mean a waiter without a live leader — a bug.
            debug_assert!(
                !shard
                    .slots
                    .iter()
                    .any(|s| matches!(s.state, JobState::Waiting { .. })),
                "expire_all left an orphaned coalesced waiter"
            );
        }
    }

    /// Expires one pending job to `Unknown` (used by [`JobHandle::wait`]
    /// when the global budget runs dry). Returns `false` if the job is
    /// currently claimed by a stepping thread — retry after it lands.
    fn expire_job(&self, id: JobId) -> bool {
        let mut shard = self.lock_shard(id.shard as usize);
        let si = id.slot as usize;
        if shard.slots[si].generation != id.generation {
            return true; // already gone
        }
        match shard.slots[si].state {
            JobState::Running(_) => {
                let JobState::Running(_task) =
                    std::mem::replace(&mut shard.slots[si].state, JobState::Stepping)
                else {
                    unreachable!("matched Running above")
                };
                self.core.expire_slot(&mut shard, id.slot);
                true
            }
            JobState::Waiting { leader } => {
                if let Some(ws) = shard.waiters.get_mut(&leader) {
                    ws.retain(|&w| w != id.slot);
                }
                let outcome = unknown_outcome(shard.slots[si].fuel_spent);
                self.core.stats.expired.fetch_add(1, Ordering::Relaxed);
                self.core.record_answer(&outcome);
                shard.slots[si].state = JobState::Finished(outcome);
                true
            }
            JobState::Stepping => false,
            JobState::Finished(_) | JobState::Vacant => true,
        }
    }

    /// Frees a job's storage. Pending jobs keep running to completion
    /// (their answer still feeds the cache and any coalesced waiters) but
    /// their outcome is dropped on arrival.
    fn retire(&self, id: JobId) {
        let mut shard = self.lock_shard(id.shard as usize);
        let si = id.slot as usize;
        if shard.slots[si].generation != id.generation {
            return;
        }
        self.core.stats.retired.fetch_add(1, Ordering::Relaxed);
        match shard.slots[si].state {
            JobState::Finished(_) => shard.free_slot(id.slot),
            JobState::Waiting { leader } => {
                if let Some(ws) = shard.waiters.get_mut(&leader) {
                    ws.retain(|&w| w != id.slot);
                }
                shard.free_slot(id.slot);
            }
            JobState::Running(_) | JobState::Stepping => {
                shard.slots[si].retired = true;
            }
            JobState::Vacant => {}
        }
    }
}

impl Core {
    /// Reserves up to `want` fuel units from the global budget; the
    /// granted amount may be smaller. Unused grant is refunded by the
    /// stepper.
    fn reserve_fuel(&self, want: usize) -> usize {
        if !self.metered {
            return want;
        }
        let mut granted = 0;
        let _ = self
            .fuel
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |rem| {
                granted = rem.min(want as u64) as usize;
                Some(rem - granted as u64)
            });
        granted
    }

    fn refund_fuel(&self, unused: u64) {
        if self.metered && unused > 0 {
            self.fuel.fetch_add(unused, Ordering::Relaxed);
        }
    }

    /// Updates the answer histogram and completion count.
    fn record_answer(&self, outcome: &JobOutcome) {
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        let counter = match outcome.implication {
            Answer::Yes => &self.stats.yes,
            Answer::No => &self.stats.no,
            Answer::Unknown => &self.stats.unknown,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Finishes a job from its decided task: records stats, fills the
    /// cache (bounded), wakes coalesced waiters. Called under the shard
    /// lock with the slot in `Stepping` state (task moved out).
    fn complete_slot(&self, shard: &mut Shard, slot: u32, task: DecideTask) {
        let (decision, _pool) = task.finish();
        let outcome = JobOutcome {
            implication: decision.implication,
            finite_implication: decision.finite_implication,
            counterexample: decision.counterexample,
            from_cache: false,
            fuel_spent: shard.slots[slot as usize].fuel_spent,
        };
        self.record_answer(&outcome);
        let key = shard.slots[slot as usize].key.take();
        let goal = shard.slots[slot as usize].goal.take();
        if let Some(k) = key {
            // Only definite answers are cached: Yes/No are certificates,
            // true of every isomorphic presentation of the query, while
            // Unknown is a budget artifact that could differ between
            // canonically equal submissions.
            if outcome.implication != Answer::Unknown {
                let g = goal.expect("keyed leader stores its goal");
                let answer = CachedAnswer {
                    implication: outcome.implication,
                    finite_implication: outcome.finite_implication,
                };
                if shard.cache.insert(k, answer, &g, outcome.fuel_spent) > 0 {
                    self.cached_total.fetch_add(1, Ordering::Relaxed);
                    self.enforce_cache_bound(shard);
                }
            } else {
                shard.cache.clear_inflight(&k);
            }
        }
        self.resolve_waiters(shard, slot, &outcome);
        if shard.slots[slot as usize].retired {
            shard.free_slot(slot);
        } else {
            shard.slots[slot as usize].state = JobState::Finished(outcome);
        }
    }

    /// Force-answers a claimed slot `Unknown` (fuel exhaustion). Called
    /// under the shard lock with the slot in `Stepping` state.
    fn expire_slot(&self, shard: &mut Shard, slot: u32) {
        let outcome = unknown_outcome(shard.slots[slot as usize].fuel_spent);
        self.stats.expired.fetch_add(1, Ordering::Relaxed);
        // Deliberately *not* cached: this Unknown reflects scheduling
        // pressure, not the per-query budgets the cache's answers are
        // deterministic functions of.
        self.record_answer(&outcome);
        if let Some(k) = shard.slots[slot as usize].key.take() {
            shard.cache.clear_inflight(&k);
        }
        shard.slots[slot as usize].goal = None;
        self.resolve_waiters(shard, slot, &outcome);
        if shard.slots[slot as usize].retired {
            shard.free_slot(slot);
        } else {
            shard.slots[slot as usize].state = JobState::Finished(outcome);
        }
    }

    /// Wakes every job coalesced onto `leader` with its answers.
    fn resolve_waiters(&self, shard: &mut Shard, leader: u32, outcome: &JobOutcome) {
        for w in shard.waiters.remove(&leader).unwrap_or_default() {
            debug_assert!(
                matches!(shard.slots[w as usize].state, JobState::Waiting { leader: l } if l == leader),
                "waiter list out of sync with job slots"
            );
            let waiter_outcome = JobOutcome {
                implication: outcome.implication,
                finite_implication: outcome.finite_implication,
                counterexample: None,
                from_cache: true,
                fuel_spent: 0,
            };
            self.record_answer(&waiter_outcome);
            shard.slots[w as usize].state = JobState::Finished(waiter_outcome);
        }
    }

    /// Evicts from `shard`'s cache slice until the global count is back
    /// under the configured capacity. Approximate global LRU: a shard only
    /// evicts entries it owns, so concurrent inserts elsewhere converge
    /// without cross-shard locking.
    fn enforce_cache_bound(&self, shard: &mut Shard) {
        while self.cached_total.load(Ordering::Relaxed) > self.cfg.cache_capacity {
            if shard.cache.evict_one() {
                self.cached_total.fetch_sub(1, Ordering::Relaxed);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break; // nothing local left to evict
            }
        }
    }
}

fn unknown_outcome(fuel_spent: u64) -> JobOutcome {
    JobOutcome {
        implication: Answer::Unknown,
        finite_implication: Answer::Unknown,
        counterexample: None,
        from_cache: false,
        fuel_spent,
    }
}

fn shard_of(key: &QueryKey, nshards: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % nshards
}

/// Owner of one submitted job's lifecycle. Poll it, block on it, or let
/// it go — dropping the handle **retires** the job, freeing its slot (and
/// its stored outcome) in the service; the computation itself still runs
/// to completion so its answer can feed the cache and coalesced waiters.
///
/// Handles are deliberately not `Clone`: exactly one owner decides when
/// the outcome may be dropped.
pub struct JobHandle {
    client: ImplicationClient,
    id: JobId,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("id", &self.id).finish()
    }
}

impl JobHandle {
    /// The job's identity (remains valid for
    /// [`ImplicationClient::status`] until the handle is dropped; after
    /// that it reports [`JobStatus::Retired`]).
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The job's current status. Cheap; never advances work.
    pub fn poll(&self) -> JobStatus {
        self.client.status(self.id)
    }

    /// Blocks until the job has an answer, **helping** while it waits: the
    /// calling thread steps the shard that owns this job (and only that
    /// shard — divergent jobs elsewhere cost it nothing). Under a spent
    /// global fuel budget the job is expired to an honest `Unknown`
    /// rather than waiting forever.
    pub fn wait(&self) -> JobOutcome {
        loop {
            match self.poll() {
                JobStatus::Done(outcome) => return outcome,
                JobStatus::Retired => {
                    unreachable!("a live handle's job cannot be retired")
                }
                JobStatus::Pending => {}
            }
            match self.client.step_shard(self.id.shard as usize) {
                ShardStep::Progressed => {}
                ShardStep::Idle | ShardStep::Empty => std::thread::yield_now(),
                ShardStep::FuelExhausted => {
                    // May fail while another thread holds the task; the
                    // loop retries after yielding.
                    if !self.client.expire_job(self.id) {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Retires the job now, freeing its slot in the service. Equivalent
    /// to dropping the handle; spelled out for call sites where the
    /// intent deserves a name.
    pub fn retire(self) {}
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        self.client.retire(self.id);
    }
}
