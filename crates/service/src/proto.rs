//! `typedtd-proto` — the length-prefixed streaming socket protocol.
//!
//! The paper proves implication/finite-implication of typed tds
//! undecidable, so a networked front end cannot be request/response with
//! call-and-wait semantics: any one query may hold its connection hostage
//! forever. The protocol is therefore **fully pipelined and out of
//! order** — a client tags every request with a correlation id of its own
//! choosing, the server pushes `ANSWER` frames back *as jobs resolve*
//! (which, under the dovetailing scheduler, need not be submission
//! order), and a divergent query simply never blocks the answers behind
//! it. Cancellation and detachment ride the same ids, and a dropped
//! connection maps onto the service's `JobHandle::cancel`/`detach`
//! semantics: non-detached jobs are cancelled (their fuel stops within
//! one slice), detached jobs keep computing so their answers can feed the
//! shared cache.
//!
//! # Frame layout
//!
//! Every frame, both directions, is length-prefixed:
//!
//! ```text
//! u32 LE  length of the rest (≥ 10, ≤ MAX_FRAME_LEN)
//! u8      protocol version (PROTO_VERSION)
//! u8      opcode
//! u64 LE  correlation id (client-chosen; echoed on every response)
//! bytes   payload (opcode-specific)
//! ```
//!
//! Requests: [`Opcode::Submit`], [`Opcode::Cancel`], [`Opcode::Detach`],
//! [`Opcode::Stats`], [`Opcode::Shutdown`]. Responses:
//! [`Opcode::Answer`], [`Opcode::Progress`], [`Opcode::Err`]. A `SUBMIT`
//! may set a progress flag ([`SubmitPayload::progress`]) to opt its
//! correlation into live [`ProgressKind::Running`] frames while the job
//! computes (fuel-monotone; see [`RunningUpdate`]). See
//! `crates/service/README.md` for the full specification (payload
//! layouts, version negotiation, error codes).
//!
//! # Robustness contract
//!
//! A malformed *payload* in a well-delimited frame is answered with an
//! [`Opcode::Err`] frame and the connection continues (the stream is
//! still in sync). A malformed *frame* — a length below the fixed header
//! size or beyond [`MAX_FRAME_LEN`] — means the stream can no longer be
//! trusted: the server sends a final `ERR` and disconnects cleanly. A
//! version byte the server does not speak is answered `ERR`
//! ([`err_code::BAD_VERSION`]) and the connection is closed (version
//! negotiation is "v1 or nothing" today; the byte exists so later
//! versions can do better). Nothing a client sends may panic the server
//! or desync another connection — `tests/proto.rs` fuzzes exactly this.

use crate::batch::{parse_query_line, parse_universe_spec};
use crate::service::{ImplicationClient, JobHandle, JobStatus, QuerySpec, ServiceConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use typedtd_chase::{Answer, TaskPhase};
use typedtd_relational::ValuePool;

/// The protocol version this build speaks (and stamps on every frame).
pub const PROTO_VERSION: u8 = 1;

/// Upper bound on the length prefix: version + opcode + correlation id +
/// payload. Anything larger is a protocol violation (the stream is
/// considered desynced and the connection is dropped).
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Bytes of every frame body that are not payload (version, opcode,
/// correlation id).
pub const FRAME_FIXED: usize = 1 + 1 + 8;

/// Frame opcodes. `0x0#` are client→server requests, `0x8#` are
/// server→client responses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Opcode {
    /// Submit one implication query (payload: [`SubmitPayload`]).
    Submit = 0x01,
    /// Cancel the submission with this correlation id (empty payload).
    Cancel = 0x02,
    /// Detach the submission with this correlation id: it survives a
    /// dropped connection (and a coalescing leader's cancellation) so its
    /// answer can feed the cache (empty payload).
    Detach = 0x03,
    /// Request this connection's counters (empty payload; answered with a
    /// [`ProgressKind::Stats`] progress frame).
    Stats = 0x04,
    /// Ask the whole server to shut down (empty payload; acknowledged
    /// with [`ProgressKind::Bye`], then the connection closes).
    Shutdown = 0x05,
    /// A resolved submission's verdict (payload: [`WireAnswer`]).
    Answer = 0x81,
    /// Progress/acknowledgement (payload: kind byte + UTF-8 text).
    Progress = 0x82,
    /// An error scoped to the echoed correlation id (payload: u16 LE
    /// error code + UTF-8 message). See [`err_code`].
    Err = 0x83,
}

impl Opcode {
    /// Decodes an opcode byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0x01 => Self::Submit,
            0x02 => Self::Cancel,
            0x03 => Self::Detach,
            0x04 => Self::Stats,
            0x05 => Self::Shutdown,
            0x81 => Self::Answer,
            0x82 => Self::Progress,
            0x83 => Self::Err,
            _ => return None,
        })
    }
}

/// `ERR` frame codes (first two payload bytes, LE).
pub mod err_code {
    /// The frame's version byte is not [`super::PROTO_VERSION`]; the
    /// connection closes after this error.
    pub const BAD_VERSION: u16 = 1;
    /// Unknown opcode byte (frame was well-delimited; connection
    /// continues).
    pub const BAD_OPCODE: u16 = 2;
    /// Length prefix beyond [`super::MAX_FRAME_LEN`] (or below the fixed
    /// header); the stream is desynced and the connection closes.
    pub const BAD_FRAME: u16 = 3;
    /// Opcode-specific payload did not parse (connection continues).
    pub const BAD_PAYLOAD: u16 = 4;
    /// The submitted universe or query text did not parse (connection
    /// continues; nothing was submitted).
    pub const PARSE: u16 = 5;
    /// `CANCEL`/`DETACH` for a correlation id with no pending submission
    /// (already answered, or never submitted).
    pub const UNKNOWN_CORR: u16 = 6;
    /// `SUBMIT` reusing a correlation id that is still pending.
    pub const DUPLICATE_CORR: u16 = 7;
    /// The server is at its `--max-inflight` bound and shed this
    /// `SUBMIT` instead of queueing it (connection continues; nothing
    /// was submitted — retry after draining some answers).
    pub const BUSY: u16 = 8;
}

/// One decoded frame (version byte preserved verbatim so servers can
/// negotiate; opcode kept raw so unknown opcodes stay representable).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Protocol version stamped by the sender.
    pub version: u8,
    /// Raw opcode byte (decode with [`Opcode::from_u8`]).
    pub opcode: u8,
    /// Correlation id (client-chosen on requests, echoed on responses).
    pub corr: u64,
    /// Opcode-specific payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A request/response frame at the current protocol version.
    pub fn new(opcode: Opcode, corr: u64, payload: Vec<u8>) -> Self {
        Self {
            version: PROTO_VERSION,
            opcode: opcode as u8,
            corr,
            payload,
        }
    }

    /// Appends the wire encoding of this frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len = (FRAME_FIXED + self.payload.len()) as u32;
        out.extend_from_slice(&len.to_le_bytes());
        out.push(self.version);
        out.push(self.opcode);
        out.extend_from_slice(&self.corr.to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// The wire encoding of this frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + FRAME_FIXED + self.payload.len());
        self.encode_into(&mut out);
        out
    }
}

/// Why a byte stream could not be cut into a frame. Both variants mean
/// the stream is desynced: there is no way to know where the next frame
/// starts, so the only safe reaction is a clean disconnect.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// Length prefix larger than [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// Length prefix smaller than the fixed header.
    TooShort(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooLarge(n) => write!(f, "frame length {n} exceeds {MAX_FRAME_LEN}"),
            Self::TooShort(n) => write!(f, "frame length {n} below fixed header {FRAME_FIXED}"),
        }
    }
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(Some((frame, consumed)))` when a complete frame is
/// available, `Ok(None)` when more bytes are needed, and a
/// [`FrameError`] when the length prefix is implausible (the stream is
/// desynced — disconnect).
///
/// # Errors
/// See [`FrameError`].
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if (len as usize) < FRAME_FIXED {
        return Err(FrameError::TooShort(len));
    }
    if len as usize > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let version = buf[4];
    let opcode = buf[5];
    let corr = u64::from_le_bytes(buf[6..14].try_into().expect("fixed header"));
    let payload = buf[14..total].to_vec();
    Ok(Some((
        Frame {
            version,
            opcode,
            corr,
            payload,
        },
        total,
    )))
}

/// `SUBMIT` payload: an optional per-job fuel cap plus the universe and
/// query in the `typedtd_dependencies::parser` text syntax (the same
/// line format `typedtd-serve` reads, minus the `@universe` prefix).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SubmitPayload {
    /// Per-job fuel cap (`None` = the service default / global budget).
    pub fuel_cap: Option<u64>,
    /// Universe spec: `[untyped] NAME NAME …`.
    pub universe: String,
    /// Query: `SIGMA |= GOAL` (Σ entries separated by `&`).
    pub query: String,
    /// Opt this correlation into periodic `PROGRESS`/`Running` frames
    /// while the job computes (wire: trailing flags byte, bit 0).
    pub progress: bool,
}

/// `SUBMIT` flags byte, bit 0: stream `PROGRESS`/`Running` frames.
const SUBMIT_FLAG_PROGRESS: u8 = 1;

impl SubmitPayload {
    /// Encodes the payload: `u64 fuel_cap (0 = none) · u32 ulen ·
    /// universe · u32 qlen · query [· u8 flags]`. The flags byte is only
    /// emitted when a flag is set, so a v1 submission is byte-identical
    /// to what a v1 client sends.
    pub fn encode(&self) -> Vec<u8> {
        let u = self.universe.as_bytes();
        let q = self.query.as_bytes();
        let mut out = Vec::with_capacity(17 + u.len() + q.len());
        out.extend_from_slice(&self.fuel_cap.unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&(u.len() as u32).to_le_bytes());
        out.extend_from_slice(u);
        out.extend_from_slice(&(q.len() as u32).to_le_bytes());
        out.extend_from_slice(q);
        if self.progress {
            out.push(SUBMIT_FLAG_PROGRESS);
        }
        out
    }

    /// Decodes a `SUBMIT` payload.
    ///
    /// # Errors
    /// A description of the structural problem (for an `ERR
    /// BAD_PAYLOAD` reply).
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], String> {
            let end = at
                .checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| format!("submit payload truncated at byte {at}"))?;
            let s = &bytes[*at..end];
            *at = end;
            Ok(s)
        };
        let fuel = u64::from_le_bytes(take(&mut at, 8)?.try_into().expect("8 bytes"));
        let ulen = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
        let universe = String::from_utf8(take(&mut at, ulen)?.to_vec())
            .map_err(|_| "universe spec is not UTF-8".to_string())?;
        let qlen = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
        let query = String::from_utf8(take(&mut at, qlen)?.to_vec())
            .map_err(|_| "query is not UTF-8".to_string())?;
        // An optional single flags byte may follow. It must be nonzero
        // (a flagless submission omits the byte entirely) and must not
        // set unknown bits, so garbage tails keep failing decode.
        let mut progress = false;
        if at != bytes.len() {
            if bytes.len() - at > 1 {
                return Err(format!("submit payload has {} trailing bytes", bytes.len() - at));
            }
            let flags = bytes[at];
            if flags == 0 || flags & !SUBMIT_FLAG_PROGRESS != 0 {
                return Err(format!("bad submit flags byte {flags:#04x}"));
            }
            progress = flags & SUBMIT_FLAG_PROGRESS != 0;
        }
        Ok(Self {
            fuel_cap: (fuel != 0).then_some(fuel),
            universe,
            query,
            progress,
        })
    }
}

/// `ANSWER` payload: the conjoined verdict of one submission's goal
/// parts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WireAnswer {
    /// Conjunction over parts of `Σ ⊨ σ`.
    pub implication: Answer,
    /// Conjunction over parts of `Σ ⊨_f σ`.
    pub finite_implication: Answer,
    /// Every non-vacuous part was served without fresh fuel.
    pub from_cache: bool,
    /// At least one part was cancelled (the answers are then `Unknown`).
    pub cancelled: bool,
    /// Not cancelled, but at least one part expired to `Unknown` on a
    /// fuel budget.
    pub expired: bool,
    /// Total fuel the parts spent.
    pub fuel_spent: u64,
}

const FLAG_CACHE: u8 = 1;
const FLAG_CANCELLED: u8 = 2;
const FLAG_EXPIRED: u8 = 4;

fn answer_to_u8(a: Answer) -> u8 {
    match a {
        Answer::Yes => 0,
        Answer::No => 1,
        Answer::Unknown => 2,
    }
}

fn answer_from_u8(b: u8) -> Result<Answer, String> {
    Ok(match b {
        0 => Answer::Yes,
        1 => Answer::No,
        2 => Answer::Unknown,
        _ => return Err(format!("bad answer byte {b}")),
    })
}

impl WireAnswer {
    /// Encodes the payload: `u8 implication · u8 finite · u8 flags ·
    /// u64 fuel_spent`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(11);
        out.push(answer_to_u8(self.implication));
        out.push(answer_to_u8(self.finite_implication));
        let mut flags = 0u8;
        if self.from_cache {
            flags |= FLAG_CACHE;
        }
        if self.cancelled {
            flags |= FLAG_CANCELLED;
        }
        if self.expired {
            flags |= FLAG_EXPIRED;
        }
        out.push(flags);
        out.extend_from_slice(&self.fuel_spent.to_le_bytes());
        out
    }

    /// Decodes an `ANSWER` payload.
    ///
    /// # Errors
    /// A description of the structural problem.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() != 11 {
            return Err(format!("answer payload must be 11 bytes, got {}", bytes.len()));
        }
        Ok(Self {
            implication: answer_from_u8(bytes[0])?,
            finite_implication: answer_from_u8(bytes[1])?,
            from_cache: bytes[2] & FLAG_CACHE != 0,
            cancelled: bytes[2] & FLAG_CANCELLED != 0,
            expired: bytes[2] & FLAG_EXPIRED != 0,
            fuel_spent: u64::from_le_bytes(bytes[3..11].try_into().expect("8 bytes")),
        })
    }
}

/// First payload byte of a `PROGRESS` frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum ProgressKind {
    /// A `SUBMIT` was accepted and scheduled (`text` reports
    /// `parts=N`). The `ANSWER` follows when the parts resolve.
    Accepted = 0,
    /// Reply to `STATS`: `text` is space-separated `key=value` counters
    /// (parse with [`parse_stats_text`]).
    Stats = 1,
    /// Reply to `SHUTDOWN`: the server is going down and this connection
    /// closes after the frame.
    Bye = 2,
    /// Mid-computation progress for a `SUBMIT` that set the progress
    /// flag: `text` is `key=value` pairs (parse with
    /// [`parse_running_text`]). Sent only while the job still computes;
    /// the `ANSWER` follows as usual.
    Running = 3,
}

impl ProgressKind {
    /// Decodes a progress-kind byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0 => Self::Accepted,
            1 => Self::Stats,
            2 => Self::Bye,
            3 => Self::Running,
            _ => return None,
        })
    }
}

/// A decoded `PROGRESS`/`Running` frame: the aggregate
/// [`ProgressSnapshot`](typedtd_chase::ProgressSnapshot) of a streaming
/// submission's parts, as of the latest fuel slice.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RunningUpdate {
    /// Phase of the part that most recently ran (`chase` / `search` /
    /// `dovetail` / `done`).
    pub phase: String,
    /// Total fuel spent across the submission's parts so far. Strictly
    /// increases between consecutive `Running` frames of one
    /// correlation.
    pub fuel: u64,
    /// Chase rounds completed, summed over parts.
    pub rounds: u64,
    /// Chase steps (td applications + merges), summed over parts.
    pub steps: u64,
    /// Equality merges applied, summed over parts.
    pub merges: u64,
    /// Chase-instance rows, summed over parts.
    pub rows: u64,
    /// Finite-model search attempts, summed over parts.
    pub attempts: u64,
    /// Hash-join build-side rows taken by chase trigger scans, summed
    /// over parts.
    pub join_build: u64,
    /// Hash-join probe-side hits scored by chase trigger scans, summed
    /// over parts.
    pub join_probe: u64,
    /// Worker shards spawned by parallel chase trigger scans, summed
    /// over parts.
    pub join_shards: u64,
    /// Goal parts this submission fans out to.
    pub parts: u64,
    /// Parts still unresolved when the frame was cut.
    pub pending: u64,
}

/// Parses a `PROGRESS`/`Running` text body into a [`RunningUpdate`].
/// Unknown keys are ignored and missing keys default to zero/empty, so
/// the format can grow fields compatibly.
pub fn parse_running_text(text: &str) -> RunningUpdate {
    let mut up = RunningUpdate::default();
    for kv in text.split_whitespace() {
        let Some((k, v)) = kv.split_once('=') else {
            continue;
        };
        if k == "phase" {
            up.phase = v.to_string();
            continue;
        }
        let Ok(n) = v.parse::<u64>() else { continue };
        match k {
            "fuel" => up.fuel = n,
            "rounds" => up.rounds = n,
            "steps" => up.steps = n,
            "merges" => up.merges = n,
            "rows" => up.rows = n,
            "attempts" => up.attempts = n,
            "jbuild" => up.join_build = n,
            "jprobe" => up.join_probe = n,
            "jshards" => up.join_shards = n,
            "parts" => up.parts = n,
            "pending" => up.pending = n,
            _ => {}
        }
    }
    up
}

fn progress_frame(corr: u64, kind: ProgressKind, text: &str) -> Frame {
    let mut payload = Vec::with_capacity(1 + text.len());
    payload.push(kind as u8);
    payload.extend_from_slice(text.as_bytes());
    Frame::new(Opcode::Progress, corr, payload)
}

fn err_frame(corr: u64, code: u16, text: &str) -> Frame {
    let mut payload = Vec::with_capacity(2 + text.len());
    payload.extend_from_slice(&code.to_le_bytes());
    payload.extend_from_slice(text.as_bytes());
    Frame::new(Opcode::Err, corr, payload)
}

/// Splits an `ERR` payload into its code and message.
///
/// # Errors
/// When the payload is shorter than the two code bytes.
pub fn decode_err(payload: &[u8]) -> Result<(u16, String), String> {
    if payload.len() < 2 {
        return Err("err payload below 2 bytes".into());
    }
    Ok((
        u16::from_le_bytes([payload[0], payload[1]]),
        String::from_utf8_lossy(&payload[2..]).into_owned(),
    ))
}

/// Parses a `PROGRESS`/`STATS` text body (`key=value` pairs separated by
/// whitespace) into a counter map; non-numeric values are skipped.
pub fn parse_stats_text(text: &str) -> HashMap<String, u64> {
    text.split_whitespace()
        .filter_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            Some((k.to_string(), v.parse().ok()?))
        })
        .collect()
}

/// A connected socket, TCP or Unix-domain, behind one type so the codec,
/// server, and client are transport-agnostic.
#[derive(Debug)]
pub enum ProtoStream {
    /// TCP (`std::net`).
    Tcp(TcpStream),
    /// Unix-domain (`std::os::unix::net`).
    #[cfg(unix)]
    Unix(UnixStream),
}

impl ProtoStream {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Self::Unix(s) => s.set_read_timeout(d),
        }
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_write_timeout(d),
            #[cfg(unix)]
            Self::Unix(s) => s.set_write_timeout(d),
        }
    }
}

impl Read for ProtoStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ProtoStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Self::Unix(s) => s.flush(),
        }
    }
}

/// How often an idle connection or driver re-checks for new work or the
/// shutdown flag. Answer latency and shutdown latency are bounded by it.
const POLL_INTERVAL: Duration = Duration::from_micros(200);

/// Server configuration: the shared service plus how many dedicated
/// scheduler driver threads the server runs. Drivers guarantee progress
/// for detached/orphaned jobs; a connection with its own submissions in
/// flight additionally helps drive the scheduler, so answer latency
/// tracks the computation rather than the drivers' polling cadence.
#[derive(Clone, Debug)]
pub struct SockdConfig {
    /// The shared implication service's knobs.
    pub service: ServiceConfig,
    /// Scheduler driver threads (min 1).
    pub drivers: usize,
    /// Overload bound: a `SUBMIT` arriving while this many jobs are
    /// already in flight is shed with [`err_code::BUSY`] instead of
    /// queued — the queue stays bounded under a misbehaving client and
    /// the shed count appears in the `STATS` line. `None` (the default)
    /// never sheds.
    pub max_inflight: Option<usize>,
    /// How many whole-scheduler sweeps shutdown spends draining
    /// in-flight jobs before explicitly cancelling the stragglers
    /// (mirrors `typedtd-serve --drain-sweeps`). Jobs that finish
    /// within the budget are answered and cached; the rest resolve
    /// `Cancelled`, so [`ProtoServer::join`] is always bounded.
    pub drain_sweeps: usize,
}

impl Default for SockdConfig {
    fn default() -> Self {
        Self {
            service: ServiceConfig::default(),
            drivers: 2,
            max_inflight: None,
            drain_sweeps: 64,
        }
    }
}

struct ServerCore {
    client: ImplicationClient,
    shutdown: AtomicBool,
    /// Connections accepted over the server's lifetime.
    accepted: AtomicU64,
    /// Overload bound (see [`SockdConfig::max_inflight`]).
    max_inflight: Option<usize>,
    /// Shutdown drain budget (see [`SockdConfig::drain_sweeps`]).
    drain_sweeps: usize,
}

/// A running `typedtd-sockd` server: one shared [`ImplicationClient`],
/// an accept loop per listener (TCP and/or Unix), one thread per
/// connection, and a pool of scheduler driver threads. Shut down via a
/// [`Opcode::Shutdown`] frame from any client or
/// [`ProtoServer::shutdown_now`]; [`ProtoServer::join`] waits for all
/// threads. Dropping the server shuts it down.
pub struct ProtoServer {
    core: Arc<ServerCore>,
    threads: Vec<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl ProtoServer {
    /// Binds and starts a server. `tcp` is a `host:port` spec (`:0`
    /// picks an ephemeral port — read it back from
    /// [`ProtoServer::tcp_addr`]); `unix` is a socket path (an existing
    /// file there is removed first). At least one listener must be
    /// given.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(
        cfg: SockdConfig,
        tcp: Option<&str>,
        #[cfg_attr(not(unix), allow(unused_variables))] unix: Option<&Path>,
    ) -> io::Result<Self> {
        let core = Arc::new(ServerCore {
            client: ImplicationClient::new(cfg.service),
            shutdown: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            max_inflight: cfg.max_inflight,
            drain_sweeps: cfg.drain_sweeps,
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();
        let mut tcp_addr = None;
        if let Some(spec) = tcp {
            let addrs: Vec<SocketAddr> = spec.to_socket_addrs()?.collect();
            let listener = TcpListener::bind(&addrs[..])?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            let core = Arc::clone(&core);
            let conns = Arc::clone(&conn_threads);
            threads.push(std::thread::spawn(move || {
                accept_loop(&core, &conns, || match listener.accept() {
                    Ok((s, _)) => Ok(ProtoStream::Tcp(s)),
                    Err(e) => Err(e),
                });
            }));
        }
        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = unix {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.to_path_buf());
            let core = Arc::clone(&core);
            let conns = Arc::clone(&conn_threads);
            threads.push(std::thread::spawn(move || {
                accept_loop(&core, &conns, || match listener.accept() {
                    Ok((s, _)) => Ok(ProtoStream::Unix(s)),
                    Err(e) => Err(e),
                });
            }));
        }
        if threads.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "typedtd-sockd needs at least one listener (tcp or unix)",
            ));
        }
        for _ in 0..cfg.drivers.max(1) {
            let core = Arc::clone(&core);
            threads.push(std::thread::spawn(move || driver_loop(&core)));
        }
        Ok(Self {
            core,
            threads,
            conn_threads,
            tcp_addr,
            unix_path,
        })
    }

    /// The bound TCP address, if a TCP listener was requested.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix-socket path, if a Unix listener was requested.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// The shared service client (for in-process inspection: stats,
    /// cache length, pending jobs).
    pub fn client(&self) -> &ImplicationClient {
        &self.core.client
    }

    /// Trips the shutdown flag (as a client `SHUTDOWN` frame would).
    /// Accept loops stop, connections disconnect at their next poll
    /// tick, drivers exit.
    pub fn shutdown_now(&self) {
        self.core.shutdown.store(true, Ordering::Relaxed);
    }

    /// Waits until the server has shut down (flag tripped by a client's
    /// `SHUTDOWN` frame or [`ProtoServer::shutdown_now`]) and every
    /// thread has exited.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let conns: Vec<_> = self.conn_threads.lock().expect("conn list").drain(..).collect();
        for t in conns {
            let _ = t.join();
        }
        // Drain: with every connection gone nothing new can arrive, so
        // give in-flight (detached or orphaned) jobs a bounded number of
        // whole-scheduler sweeps to land — their answers still feed the
        // cache and the answer log — then cancel the stragglers and run
        // the cancellations to rest. Mirrors `typedtd-serve
        // --drain-sweeps`; previously shutdown dropped this work on the
        // floor.
        if self.core.client.pending_jobs() > 0 {
            let mut sweeps = 0usize;
            while self.core.client.tick() {
                sweeps += 1;
                if sweeps >= self.core.drain_sweeps {
                    break;
                }
            }
            self.core.client.cancel_pending();
            self.core.client.run_to_completion();
        }
        #[cfg(unix)]
        if let Some(p) = &self.unix_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl Drop for ProtoServer {
    fn drop(&mut self) {
        self.shutdown_now();
        self.join_inner();
    }
}

fn accept_loop(
    core: &Arc<ServerCore>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    mut accept: impl FnMut() -> io::Result<ProtoStream>,
) {
    loop {
        if core.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match accept() {
            Ok(stream) => {
                core.accepted.fetch_add(1, Ordering::Relaxed);
                let core = Arc::clone(core);
                let handle = std::thread::spawn(move || serve_conn(&core, stream));
                let mut list = conns.lock().expect("conn list");
                // Reap handles of connections that already exited —
                // without this a long-lived server leaks one handle per
                // connection ever accepted (dropping a finished handle
                // detaches nothing; the thread is gone).
                list.retain(|h| !h.is_finished());
                list.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            // A connection that reset before we accepted it (routine
            // under load) must not kill the listener — only genuinely
            // fatal accept errors end the loop.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

/// One scheduler driver: sweeps all shards; sleeps briefly when nothing
/// is runnable. Connections never drive the scheduler, so answer
/// latency is `POLL_INTERVAL`-bounded, not submission-gated.
fn driver_loop(core: &ServerCore) {
    loop {
        if core.shutdown.load(Ordering::Relaxed) {
            return;
        }
        if core.client.tick() {
            // A yield between productive sweeps keeps connection and
            // client threads schedulable on few-core hosts — a driver
            // that spins through uncontended shard locks never enters
            // the kernel and can otherwise monopolize a core.
            std::thread::yield_now();
        } else {
            std::thread::sleep(POLL_INTERVAL);
        }
    }
}

/// One submission in flight on a connection: the jobs of its normalized
/// goal parts plus the detach mark and progress-streaming state.
struct PendingEntry {
    jobs: Vec<JobHandle>,
    detached: bool,
    /// The `SUBMIT` set the progress flag: stream `Running` frames.
    progress: bool,
    /// Aggregate fuel reported in the last `Running` frame. Frames are
    /// emitted only on a strict increase, so the stream is fuel-monotone
    /// and an idle (queued, coalesced, or cache-racing) job stays quiet.
    last_fuel: u64,
}

#[derive(Default)]
struct ConnCounters {
    submitted: u64,
    answered: u64,
    cancelled: u64,
    expired: u64,
}

/// The per-connection loop: reads frames (non-blocking, short timeout),
/// handles requests against the shared client, polls pending
/// submissions, and pushes `ANSWER` frames out of order as they
/// resolve. On exit (EOF, error, or server shutdown), non-detached
/// pending jobs are cancelled and all handles retire — exactly the
/// `JobHandle::cancel`/`detach` semantics of a dropped client.
/// How long one socket write attempt may block before the loop re-checks
/// the shutdown flag. Bounds how long a stalled reader (a client that
/// pipelines submits but never drains its answers) can delay server
/// shutdown.
const WRITE_SLICE: Duration = Duration::from_millis(50);

/// Writes `buf` fully in shutdown-observing slices. A client that stops
/// reading fills the kernel send buffer; without the timeout the
/// connection thread would block in `write_all` forever and wedge
/// [`ProtoServer::join`]. Returns `false` when the connection should be
/// dropped (peer gone, or the server is shutting down mid-write).
fn write_all_checked(core: &ServerCore, stream: &mut ProtoStream, buf: &[u8]) -> bool {
    let mut written = 0usize;
    while written < buf.len() {
        match stream.write(&buf[written..]) {
            Ok(0) => return false,
            Ok(n) => written += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                // The flag is checked only on *stalled* attempts: a
                // responsive peer always gets its frames (including the
                // final BYE of the shutdown handshake, which is written
                // after the flag is already set), while a stalled one
                // stops delaying shutdown within one write slice.
                if core.shutdown.load(Ordering::Relaxed) {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

fn serve_conn(core: &ServerCore, mut stream: ProtoStream) {
    // The baseline timeouts must be in place before the first
    // read/write: an idle connection that blocked forever in `read` (or
    // a stalled reader blocking `write`) would never observe the
    // shutdown flag and would wedge `ProtoServer::join`.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(WRITE_SLICE));
    let mut rbuf: Vec<u8> = Vec::new();
    let mut consumed = 0usize;
    let mut tmp = [0u8; 16 * 1024];
    let mut pending: HashMap<u64, PendingEntry> = HashMap::new();
    let mut order: VecDeque<u64> = VecDeque::new();
    let mut counters = ConnCounters::default();
    let mut out: Vec<u8> = Vec::new();
    let mut helping = false;
    let mut last_progress = Instant::now();
    'conn: loop {
        if core.shutdown.load(Ordering::Relaxed) {
            break;
        }
        // While this connection has submissions in flight it *helps
        // drive* the scheduler (below) instead of waiting out the read
        // timeout — wire latency then tracks the computation, not the
        // poll interval. Idle connections block in the read for the full
        // interval so they cost nothing.
        let help = !pending.is_empty();
        if help != helping {
            helping = help;
            let _ = stream.set_read_timeout(Some(if help {
                Duration::from_micros(1)
            } else {
                POLL_INTERVAL
            }));
        }
        match stream.read(&mut tmp) {
            Ok(0) => break, // EOF: client hung up
            Ok(n) => rbuf.extend_from_slice(&tmp[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
        loop {
            match decode_frame(&rbuf[consumed..]) {
                Ok(Some((frame, used))) => {
                    consumed += used;
                    match handle_frame(
                        core,
                        frame,
                        &mut pending,
                        &mut order,
                        &mut counters,
                        &mut out,
                    ) {
                        ConnControl::Continue => {}
                        ConnControl::Close => {
                            write_all_checked(core, &mut stream, &out);
                            break 'conn;
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Desynced stream: one final ERR, then a clean
                    // disconnect — never a panic, never a guess at where
                    // the next frame starts.
                    err_frame(0, err_code::BAD_FRAME, &e.to_string()).encode_into(&mut out);
                    write_all_checked(core, &mut stream, &out);
                    break 'conn;
                }
            }
        }
        if consumed > 0 {
            rbuf.drain(..consumed);
            consumed = 0;
        }
        if !pending.is_empty() {
            core.client.tick();
        }
        if last_progress.elapsed() >= PROGRESS_INTERVAL {
            last_progress = Instant::now();
            pump_progress(&mut pending, &mut out);
        }
        pump_answers(&mut pending, &mut order, &mut counters, &mut out);
        if !out.is_empty() {
            if !write_all_checked(core, &mut stream, &out) {
                break;
            }
            out.clear();
        }
    }
    // Dropped connection: cancel what nobody detached; detached jobs
    // keep computing so their answers can still feed the shared cache.
    for entry in pending.values() {
        if !entry.detached {
            for job in &entry.jobs {
                job.cancel();
            }
        }
    }
}

enum ConnControl {
    Continue,
    Close,
}

fn handle_frame(
    core: &ServerCore,
    frame: Frame,
    pending: &mut HashMap<u64, PendingEntry>,
    order: &mut VecDeque<u64>,
    counters: &mut ConnCounters,
    out: &mut Vec<u8>,
) -> ConnControl {
    if frame.version != PROTO_VERSION {
        err_frame(
            frame.corr,
            err_code::BAD_VERSION,
            &format!("server speaks version {PROTO_VERSION}, frame has {}", frame.version),
        )
        .encode_into(out);
        return ConnControl::Close;
    }
    let Some(opcode) = Opcode::from_u8(frame.opcode) else {
        err_frame(
            frame.corr,
            err_code::BAD_OPCODE,
            &format!("unknown opcode 0x{:02x}", frame.opcode),
        )
        .encode_into(out);
        return ConnControl::Continue;
    };
    match opcode {
        Opcode::Submit => {
            if pending.contains_key(&frame.corr) {
                err_frame(
                    frame.corr,
                    err_code::DUPLICATE_CORR,
                    "correlation id already pending",
                )
                .encode_into(out);
                return ConnControl::Continue;
            }
            // Overload shedding: a clean ERR the client can retry beats
            // unbounded queue growth. Checked before the (expensive)
            // parse so a flood of oversized submissions can't buy CPU
            // with frames that would be shed anyway.
            if let Some(max) = core.max_inflight {
                if core.client.pending_jobs() >= max {
                    core.client.note_shed();
                    err_frame(
                        frame.corr,
                        err_code::BUSY,
                        &format!("server at max-inflight={max}; retry after draining answers"),
                    )
                    .encode_into(out);
                    return ConnControl::Continue;
                }
            }
            let payload = match SubmitPayload::decode(&frame.payload) {
                Ok(p) => p,
                Err(msg) => {
                    err_frame(frame.corr, err_code::BAD_PAYLOAD, &msg).encode_into(out);
                    return ConnControl::Continue;
                }
            };
            // The whole text layer is a plain `Result` pipeline: every
            // parser and `try_normalize` reports malformed input as
            // `Err`, so every rejection is an `ERR` frame on a
            // still-synced stream and the connection thread never dies.
            let parsed = (|| {
                let universe = parse_universe_spec(&payload.universe)?;
                let mut pool = ValuePool::new(universe.clone());
                let (sigma, goal) = parse_query_line(&universe, &mut pool, &payload.query)?;
                let mut sigma_normal = Vec::new();
                for d in &sigma {
                    sigma_normal.extend(d.try_normalize(&universe, &mut pool)?);
                }
                let class = goal.class();
                let goal_parts = goal.try_normalize(&universe, &mut pool)?;
                Ok::<_, String>((pool, sigma_normal, goal_parts, class))
            })();
            let (pool, sigma_normal, goal_parts, class) = match parsed {
                Ok(v) => v,
                Err(msg) => {
                    err_frame(frame.corr, err_code::PARSE, &msg).encode_into(out);
                    return ConnControl::Continue;
                }
            };
            counters.submitted += 1;
            let jobs: Vec<JobHandle> = goal_parts
                .into_iter()
                .map(|part| {
                    let mut spec = QuerySpec::new(sigma_normal.clone(), part, pool.clone())
                        .goal_class(class);
                    if let Some(cap) = payload.fuel_cap {
                        spec = spec.fuel_cap(cap);
                    }
                    core.client.submit(spec)
                })
                .collect();
            progress_frame(
                frame.corr,
                ProgressKind::Accepted,
                &format!("parts={}", jobs.len()),
            )
            .encode_into(out);
            pending.insert(
                frame.corr,
                PendingEntry {
                    jobs,
                    detached: false,
                    progress: payload.progress,
                    last_fuel: 0,
                },
            );
            order.push_back(frame.corr);
            ConnControl::Continue
        }
        Opcode::Cancel => {
            match pending.get(&frame.corr) {
                Some(entry) => {
                    for job in &entry.jobs {
                        job.cancel();
                    }
                }
                None => {
                    err_frame(frame.corr, err_code::UNKNOWN_CORR, "nothing pending under id")
                        .encode_into(out);
                }
            }
            ConnControl::Continue
        }
        Opcode::Detach => {
            match pending.get_mut(&frame.corr) {
                Some(entry) => {
                    entry.detached = true;
                    for job in &entry.jobs {
                        job.detach();
                    }
                }
                None => {
                    err_frame(frame.corr, err_code::UNKNOWN_CORR, "nothing pending under id")
                        .encode_into(out);
                }
            }
            ConnControl::Continue
        }
        Opcode::Stats => {
            let mut text = format!(
                "submitted={} answered={} cancelled={} expired={} pending={} shed={}",
                counters.submitted,
                counters.answered,
                counters.cancelled,
                counters.expired,
                pending.len(),
                core.client.stats().shed,
            );
            // Per-class cache breakdown (only classes that saw traffic),
            // in the same `key=value` token shape.
            {
                use std::fmt::Write as _;
                let s = core.client.stats();
                for c in typedtd_dependencies::DependencyClass::ALL {
                    let i = c.index();
                    if s.class_submitted[i] == 0 {
                        continue;
                    }
                    let _ = write!(
                        text,
                        " class_{}_submitted={} class_{}_hits={} class_{}_misses={}",
                        c.as_str(),
                        s.class_submitted[i],
                        c.as_str(),
                        s.class_cache_hits[i],
                        c.as_str(),
                        s.class_cache_misses[i],
                    );
                }
                // Fragment-routing and Σ-group sharing counters, always
                // emitted: the token-tolerant parser skips them on old
                // clients, and ledger diffs want the zeros.
                for r in typedtd_chase::RouteClass::ALL {
                    let _ = write!(
                        text,
                        " class_routed_{}={}",
                        r.as_str(),
                        s.class_routed[r.index()],
                    );
                }
                let _ = write!(
                    text,
                    " grouped={} group_chases={} group_fallbacks={}",
                    s.grouped, s.group_chases, s.group_fallbacks,
                );
            }
            // Server-wide histogram families ride along as more
            // `key=value` tokens ([`TelemetrySnapshot::stats_text`]), so
            // `parse_stats_text` keeps working unchanged.
            text.push_str(&core.client.telemetry_snapshot().stats_text());
            progress_frame(frame.corr, ProgressKind::Stats, &text).encode_into(out);
            ConnControl::Continue
        }
        Opcode::Shutdown => {
            core.shutdown.store(true, Ordering::Relaxed);
            progress_frame(frame.corr, ProgressKind::Bye, "shutting down").encode_into(out);
            ConnControl::Close
        }
        // A client sending response opcodes is out of protocol, but the
        // frame was well-delimited: report and continue.
        Opcode::Answer | Opcode::Progress | Opcode::Err => {
            err_frame(
                frame.corr,
                err_code::BAD_OPCODE,
                "response opcode on the request direction",
            )
            .encode_into(out);
            ConnControl::Continue
        }
    }
}

/// How often a connection scans its progress-streaming submissions for
/// a `Running` frame. Decouples wire chatter from the helping-drive
/// read cadence (1 µs while anything is pending).
const PROGRESS_INTERVAL: Duration = Duration::from_micros(500);

/// Emits a `PROGRESS`/`Running` frame for every streaming submission
/// whose parts spent fuel since its last frame. The per-entry
/// `last_fuel` gate makes the stream strictly fuel-monotone; entries
/// with every part already resolved stay quiet (their `ANSWER` carries
/// the final totals).
fn pump_progress(pending: &mut HashMap<u64, PendingEntry>, out: &mut Vec<u8>) {
    for (&corr, entry) in pending.iter_mut() {
        if !entry.progress {
            continue;
        }
        let mut up = RunningUpdate {
            phase: String::new(),
            parts: entry.jobs.len() as u64,
            ..RunningUpdate::default()
        };
        let mut phase = TaskPhase::Done;
        for job in &entry.jobs {
            if matches!(job.poll(), JobStatus::Pending) {
                up.pending += 1;
            }
            let Some(p) = job.progress() else { continue };
            up.fuel += p.fuel_spent;
            up.rounds += p.chase_rounds;
            up.steps += p.chase_steps;
            up.merges += p.chase_merges;
            up.rows += p.instance_rows;
            up.attempts += p.search_attempts;
            up.join_build += p.join_build_rows;
            up.join_probe += p.join_probe_hits;
            up.join_shards += p.parallel_shards;
            // Report the phase of a part still computing; parts that
            // finished (or never ran) don't override it.
            if p.phase != TaskPhase::Done {
                phase = p.phase;
            }
        }
        if up.pending == 0 || up.fuel <= entry.last_fuel {
            continue;
        }
        entry.last_fuel = up.fuel;
        let text = format!(
            "phase={} fuel={} rounds={} steps={} merges={} rows={} attempts={} jbuild={} jprobe={} jshards={} parts={} pending={}",
            phase.as_str(),
            up.fuel,
            up.rounds,
            up.steps,
            up.merges,
            up.rows,
            up.attempts,
            up.join_build,
            up.join_probe,
            up.join_shards,
            up.parts,
            up.pending,
        );
        progress_frame(corr, ProgressKind::Running, &text).encode_into(out);
    }
}

/// Emits `ANSWER` frames for every pending submission whose parts have
/// all resolved (in resolution order, not submission order).
fn pump_answers(
    pending: &mut HashMap<u64, PendingEntry>,
    order: &mut VecDeque<u64>,
    counters: &mut ConnCounters,
    out: &mut Vec<u8>,
) {
    order.retain(|&corr| {
        let entry = pending.get(&corr).expect("order tracks pending");
        let Some(answer) = conjoin_entry(entry) else {
            return true; // still pending
        };
        if answer.cancelled {
            counters.cancelled += 1;
        } else if answer.expired {
            counters.expired += 1;
        } else {
            counters.answered += 1;
        }
        Frame::new(Opcode::Answer, corr, answer.encode()).encode_into(out);
        pending.remove(&corr);
        false
    });
}

/// Folds one submission's parts into a wire answer, or `None` while any
/// part is pending. Mirrors `BatchQuery::conjoined`, adding the
/// cancelled/expired classification the wire stats invariant
/// (`answered + cancelled + expired == submitted`) is built on.
fn conjoin_entry(entry: &PendingEntry) -> Option<WireAnswer> {
    let mut answer = WireAnswer {
        implication: Answer::Yes,
        finite_implication: Answer::Yes,
        from_cache: !entry.jobs.is_empty(),
        cancelled: false,
        expired: false,
        fuel_spent: 0,
    };
    for job in &entry.jobs {
        match job.poll() {
            JobStatus::Done(outcome) => {
                answer.implication = answer.implication.and(outcome.implication);
                answer.finite_implication =
                    answer.finite_implication.and(outcome.finite_implication);
                answer.from_cache &= outcome.from_cache;
                answer.fuel_spent += outcome.fuel_spent;
            }
            JobStatus::Cancelled => {
                answer.implication = Answer::Unknown;
                answer.finite_implication = Answer::Unknown;
                answer.from_cache = false;
                answer.cancelled = true;
            }
            JobStatus::Pending => return None,
            JobStatus::Retired => unreachable!("the connection owns its job handles"),
        }
    }
    answer.expired = !answer.cancelled
        && (answer.implication == Answer::Unknown
            || answer.finite_implication == Answer::Unknown);
    Some(answer)
}

/// Client-side resilience knobs: connect/read timeouts plus a bounded
/// reconnect-with-jittered-backoff policy. The [`Default`] keeps the
/// legacy behavior — OS-default connect, block forever on reads, never
/// reconnect — so existing callers are unchanged; a resilient client
/// opts in via [`ProtoClient::connect_tcp_with`] /
/// [`ProtoClient::connect_unix_with`]. Re-submission after a reconnect
/// is idempotent end to end: the server's answer cache (and coalescing)
/// makes a repeated `SUBMIT` of an already-answered query a cache hit,
/// so a backend restart costs latency, not correctness.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Bound on each TCP connect attempt (`None` = OS default). Unix
    /// connects are local and effectively immediate; the bound is not
    /// applied there.
    pub connect_timeout: Option<Duration>,
    /// Bound on each blocking read. On expiry the client treats the
    /// connection as stalled: with reconnection enabled it re-dials and
    /// re-submits, otherwise the `TimedOut` error surfaces. `None`
    /// blocks forever.
    pub read_timeout: Option<Duration>,
    /// Reconnect attempts per failure before the original error
    /// surfaces (0 disables reconnection entirely).
    pub reconnect_attempts: u32,
    /// Backoff before the first reconnect attempt; doubles per attempt.
    pub backoff_base: Duration,
    /// Ceiling on the (pre-jitter) backoff.
    pub backoff_max: Duration,
    /// Seed for the deterministic backoff jitter (each sleep is a
    /// uniform draw from the upper half of the exponential step, so a
    /// thundering herd of restarted clients decorrelates).
    pub backoff_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: None,
            read_timeout: None,
            reconnect_attempts: 0,
            backoff_base: Duration::from_millis(20),
            backoff_max: Duration::from_secs(1),
            backoff_seed: 0x1d,
        }
    }
}

impl ClientConfig {
    /// A resilient profile: 5s connect timeout, `read_timeout` reads,
    /// `attempts` reconnects with 20ms..1s jittered backoff.
    pub fn resilient(read_timeout: Duration, attempts: u32) -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(read_timeout),
            reconnect_attempts: attempts,
            ..Self::default()
        }
    }
}

/// Where a [`ProtoClient`] can re-dial its server. Wrapped streams
/// ([`ProtoClient::over`]) have no address, so they never reconnect.
enum Target {
    Tcp(Vec<SocketAddr>),
    #[cfg(unix)]
    Unix(PathBuf),
    Wrapped,
}

/// A synchronous (blocking, `std::net`) protocol client: submit queries,
/// cancel/detach them, read out-of-order answers, fetch stats. One
/// client owns one connection; use one client per thread (the protocol
/// itself is fully pipelined, so a single client may have any number of
/// submissions outstanding). With a [`ClientConfig`] that enables
/// reconnection, a dropped or stalled connection is re-dialed with
/// jittered backoff and every still-unanswered `SUBMIT` is re-sent
/// under its original correlation id.
pub struct ProtoClient {
    stream: ProtoStream,
    rbuf: Vec<u8>,
    inbox: VecDeque<Frame>,
    next_corr: u64,
    cfg: ClientConfig,
    target: Target,
    /// Unanswered submissions: correlation id → encoded
    /// [`SubmitPayload`], kept until the matching `ANSWER`/`ERR` frame
    /// arrives so a reconnect can replay them.
    outstanding: HashMap<u64, Vec<u8>>,
    rng: StdRng,
}

/// Dials `target` fresh (used for both the initial connect and
/// reconnects) and applies the read timeout.
fn dial(target: &Target, cfg: &ClientConfig) -> io::Result<ProtoStream> {
    let stream = match target {
        Target::Tcp(addrs) => {
            let mut last = None;
            let mut connected = None;
            for addr in addrs {
                let res = match cfg.connect_timeout {
                    Some(t) => TcpStream::connect_timeout(addr, t),
                    None => TcpStream::connect(addr),
                };
                match res {
                    Ok(s) => {
                        s.set_nodelay(true).ok();
                        connected = Some(ProtoStream::Tcp(s));
                        break;
                    }
                    Err(e) => last = Some(e),
                }
            }
            match connected {
                Some(s) => s,
                None => {
                    return Err(last.unwrap_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidInput, "no addresses to dial")
                    }))
                }
            }
        }
        #[cfg(unix)]
        Target::Unix(path) => ProtoStream::Unix(UnixStream::connect(path)?),
        Target::Wrapped => {
            return Err(io::Error::other("a wrapped stream has no address to re-dial"))
        }
    };
    if cfg.read_timeout.is_some() {
        stream.set_read_timeout(cfg.read_timeout)?;
    }
    Ok(stream)
}

impl ProtoClient {
    /// Connects over TCP with default (legacy: blocking, non-resilient)
    /// client behavior.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_tcp_with(addr, ClientConfig::default())
    }

    /// Connects over TCP with explicit timeout/reconnect behavior.
    ///
    /// # Errors
    /// Propagates address-resolution and connect failures.
    pub fn connect_tcp_with(addr: impl ToSocketAddrs, cfg: ClientConfig) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let target = Target::Tcp(addrs);
        let stream = dial(&target, &cfg)?;
        Ok(Self::assemble(stream, target, cfg))
    }

    /// Connects over a Unix-domain socket with default behavior.
    ///
    /// # Errors
    /// Propagates connect failures.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::connect_unix_with(path, ClientConfig::default())
    }

    /// Connects over a Unix-domain socket with explicit
    /// timeout/reconnect behavior.
    ///
    /// # Errors
    /// Propagates connect failures.
    #[cfg(unix)]
    pub fn connect_unix_with(path: impl AsRef<Path>, cfg: ClientConfig) -> io::Result<Self> {
        let target = Target::Unix(path.as_ref().to_path_buf());
        let stream = dial(&target, &cfg)?;
        Ok(Self::assemble(stream, target, cfg))
    }

    /// Wraps an already-connected stream (no address, so the client
    /// never reconnects).
    pub fn over(stream: ProtoStream) -> Self {
        Self::assemble(stream, Target::Wrapped, ClientConfig::default())
    }

    fn assemble(stream: ProtoStream, target: Target, cfg: ClientConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.backoff_seed);
        Self {
            stream,
            rbuf: Vec::new(),
            inbox: VecDeque::new(),
            next_corr: 1,
            cfg,
            target,
            outstanding: HashMap::new(),
            rng,
        }
    }

    /// Re-dials the server with jittered exponential backoff and
    /// replays every outstanding submission under its original
    /// correlation id. Returns `cause` when reconnection is disabled,
    /// impossible (wrapped stream), or exhausted.
    fn reconnect(&mut self, cause: io::Error) -> io::Result<()> {
        if self.cfg.reconnect_attempts == 0 || matches!(self.target, Target::Wrapped) {
            return Err(cause);
        }
        'attempts: for attempt in 0..self.cfg.reconnect_attempts {
            let step = self
                .cfg
                .backoff_base
                .saturating_mul(1u32 << attempt.min(16))
                .min(self.cfg.backoff_max);
            let full = step.as_nanos().min(u128::from(u64::MAX)) as u64;
            let jittered = if full == 0 {
                0
            } else {
                // Uniform over the upper half of the exponential step:
                // bounded below (still backs off) and decorrelated.
                full / 2 + self.rng.next_u64() % (full - full / 2 + 1)
            };
            std::thread::sleep(Duration::from_nanos(jittered));
            let Ok(stream) = dial(&self.target, &self.cfg) else {
                continue;
            };
            self.stream = stream;
            // A partial frame from the dead connection is garbage on the
            // new one; already-decoded inbox frames stay valid.
            self.rbuf.clear();
            let mut corrs: Vec<u64> = self.outstanding.keys().copied().collect();
            corrs.sort_unstable();
            for corr in corrs {
                let payload = self.outstanding[&corr].clone();
                if self
                    .send_frame(&Frame::new(Opcode::Submit, corr, payload))
                    .is_err()
                {
                    continue 'attempts;
                }
            }
            return Ok(());
        }
        Err(cause)
    }

    /// Sends a raw frame (the typed helpers below cover the protocol;
    /// this is the escape hatch tests use to speak garbage). With
    /// reconnection enabled, a write failure triggers one
    /// reconnect-and-replay cycle before the frame is retried.
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn send_raw(&mut self, frame: &Frame) -> io::Result<()> {
        match self.send_frame(frame) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.reconnect(e)?;
                self.send_frame(frame)
            }
        }
    }

    fn send_frame(&mut self, frame: &Frame) -> io::Result<()> {
        self.stream.write_all(&frame.encode())?;
        self.stream.flush()
    }

    /// Submits one query; returns the correlation id to match the
    /// eventual `ANSWER` (an `ACCEPTED` progress frame arrives first).
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn submit(
        &mut self,
        universe: &str,
        query: &str,
        fuel_cap: Option<u64>,
    ) -> io::Result<u64> {
        self.submit_inner(universe, query, fuel_cap, false)
    }

    /// Like [`ProtoClient::submit`], but sets the `SUBMIT` progress
    /// flag: the server streams `PROGRESS`/`Running` frames under the
    /// returned correlation while the job computes. Collect them with
    /// [`ProtoClient::wait_answer_with_progress`] (a plain
    /// [`ProtoClient::wait_answer`] stashes them in the inbox instead).
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn submit_with_progress(
        &mut self,
        universe: &str,
        query: &str,
        fuel_cap: Option<u64>,
    ) -> io::Result<u64> {
        self.submit_inner(universe, query, fuel_cap, true)
    }

    fn submit_inner(
        &mut self,
        universe: &str,
        query: &str,
        fuel_cap: Option<u64>,
        progress: bool,
    ) -> io::Result<u64> {
        let corr = self.next_corr;
        self.next_corr += 1;
        let payload = SubmitPayload {
            fuel_cap,
            universe: universe.to_string(),
            query: query.to_string(),
            progress,
        };
        let encoded = payload.encode();
        self.send_raw(&Frame::new(Opcode::Submit, corr, encoded.clone()))?;
        // Recorded only after the send succeeded: a reconnect inside
        // `send_raw` must not replay this very frame and then have the
        // retry send it a second time.
        self.outstanding.insert(corr, encoded);
        Ok(corr)
    }

    /// Requests cancellation of a pending submission.
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn cancel(&mut self, corr: u64) -> io::Result<()> {
        self.send_raw(&Frame::new(Opcode::Cancel, corr, Vec::new()))
    }

    /// Detaches a pending submission (it survives this connection
    /// dropping, and a coalescing leader's cancellation).
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn detach(&mut self, corr: u64) -> io::Result<()> {
        self.send_raw(&Frame::new(Opcode::Detach, corr, Vec::new()))
    }

    /// Asks the whole server to shut down.
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.send_raw(&Frame::new(Opcode::Shutdown, self.next_corr, Vec::new()))
    }

    /// Receives the next frame (blocking). Frames stashed by the
    /// filtered helpers are drained first.
    ///
    /// # Errors
    /// Read failures; `UnexpectedEof` when the server hung up, or
    /// `InvalidData` on an undecodable stream.
    pub fn recv(&mut self) -> io::Result<Frame> {
        if let Some(f) = self.inbox.pop_front() {
            return Ok(f);
        }
        self.recv_wire()
    }

    /// Receives the next frame from the wire, bypassing the inbox. The
    /// filtered helpers use this after scanning the inbox once — going
    /// through [`ProtoClient::recv`] instead would pop the very frames
    /// they just stashed and spin forever.
    fn recv_wire(&mut self) -> io::Result<Frame> {
        let mut tmp = [0u8; 16 * 1024];
        loop {
            match decode_frame(&self.rbuf) {
                Ok(Some((frame, used))) => {
                    self.rbuf.drain(..used);
                    // A settled correlation must never be replayed on
                    // reconnect — drop it from the outstanding set the
                    // moment its ANSWER/ERR is decoded, regardless of
                    // which helper the caller went through.
                    if matches!(
                        Opcode::from_u8(frame.opcode),
                        Some(Opcode::Answer | Opcode::Err)
                    ) {
                        self.outstanding.remove(&frame.corr);
                    }
                    return Ok(frame);
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                }
            }
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    let eof = io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    );
                    self.reconnect(eof)?;
                }
                Ok(n) => self.rbuf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // WouldBlock/TimedOut is the configured read timeout
                // expiring: the connection is stalled. Every other error
                // is a dead connection. Both funnel through the same
                // bounded reconnect; when reconnection is off the error
                // surfaces unchanged.
                Err(e) => self.reconnect(e)?,
            }
        }
    }

    /// Whether `frame` settles `wait_answer(corr)`.
    fn settles(frame: &Frame, corr: u64) -> bool {
        frame.corr == corr
            && matches!(
                Opcode::from_u8(frame.opcode),
                Some(Opcode::Answer | Opcode::Err)
            )
    }

    fn into_answer(frame: Frame) -> io::Result<WireAnswer> {
        match Opcode::from_u8(frame.opcode) {
            Some(Opcode::Answer) => WireAnswer::decode(&frame.payload)
                .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m)),
            _ => {
                let (code, msg) = decode_err(&frame.payload)
                    .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))?;
                Err(io::Error::other(format!("server err {code}: {msg}")))
            }
        }
    }

    /// Receives until the `ANSWER` for `corr` arrives; other frames are
    /// stashed for later [`ProtoClient::recv`] calls (`ERR` frames for
    /// this id become errors).
    ///
    /// # Errors
    /// Read failures, or `Other` carrying the server's `ERR` message.
    pub fn wait_answer(&mut self, corr: u64) -> io::Result<WireAnswer> {
        if let Some(at) = self.inbox.iter().position(|f| Self::settles(f, corr)) {
            let frame = self.inbox.remove(at).expect("position is in range");
            return Self::into_answer(frame);
        }
        loop {
            let frame = self.recv_wire()?;
            if Self::settles(&frame, corr) {
                return Self::into_answer(frame);
            }
            self.inbox.push_back(frame);
        }
    }

    /// Whether `frame` is a `PROGRESS`/`Running` frame for `corr`.
    fn is_running(frame: &Frame, corr: u64) -> bool {
        frame.corr == corr
            && Opcode::from_u8(frame.opcode) == Some(Opcode::Progress)
            && frame.payload.first().copied() == Some(ProgressKind::Running as u8)
    }

    /// Like [`ProtoClient::wait_answer`], but feeds every
    /// `PROGRESS`/`Running` frame for `corr` through `on_progress` as it
    /// arrives (stashed ones first, in arrival order). Use with
    /// [`ProtoClient::submit_with_progress`] — a flagless submission
    /// simply never invokes the callback.
    ///
    /// # Errors
    /// Read failures, or `Other` carrying the server's `ERR` message.
    pub fn wait_answer_with_progress(
        &mut self,
        corr: u64,
        mut on_progress: impl FnMut(RunningUpdate),
    ) -> io::Result<WireAnswer> {
        // Drain stashed Running frames for this correlation first so the
        // callback sees them in order even when another wait interleaved.
        let stashed: Vec<Frame> = {
            let mut kept = VecDeque::with_capacity(self.inbox.len());
            let mut mine = Vec::new();
            for f in self.inbox.drain(..) {
                if Self::is_running(&f, corr) {
                    mine.push(f);
                } else {
                    kept.push_back(f);
                }
            }
            self.inbox = kept;
            mine
        };
        for f in stashed {
            on_progress(parse_running_text(&String::from_utf8_lossy(&f.payload[1..])));
        }
        if let Some(at) = self.inbox.iter().position(|f| Self::settles(f, corr)) {
            let frame = self.inbox.remove(at).expect("position is in range");
            return Self::into_answer(frame);
        }
        loop {
            let frame = self.recv_wire()?;
            if Self::settles(&frame, corr) {
                return Self::into_answer(frame);
            }
            if Self::is_running(&frame, corr) {
                on_progress(parse_running_text(&String::from_utf8_lossy(&frame.payload[1..])));
            } else {
                self.inbox.push_back(frame);
            }
        }
    }

    /// Round-trips a `STATS` request into a counter map; unrelated
    /// frames arriving in between are stashed.
    ///
    /// # Errors
    /// Read/write failures.
    pub fn stats(&mut self) -> io::Result<HashMap<String, u64>> {
        let corr = self.next_corr;
        self.next_corr += 1;
        self.send_raw(&Frame::new(Opcode::Stats, corr, Vec::new()))?;
        loop {
            let frame = self.recv_wire()?;
            if Opcode::from_u8(frame.opcode) == Some(Opcode::Progress)
                && frame.corr == corr
                && frame.payload.first().copied() == Some(ProgressKind::Stats as u8)
            {
                let text = String::from_utf8_lossy(&frame.payload[1..]).into_owned();
                return Ok(parse_stats_text(&text));
            }
            self.inbox.push_back(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_is_exact() {
        let frames = [
            Frame::new(Opcode::Submit, 7, b"payload".to_vec()),
            Frame::new(Opcode::Cancel, u64::MAX, Vec::new()),
            Frame::new(Opcode::Answer, 0, vec![0u8; 64]),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        let mut at = 0usize;
        for f in &frames {
            let (decoded, used) = decode_frame(&wire[at..])
                .expect("well-formed")
                .expect("complete");
            assert_eq!(&decoded, f);
            at += used;
        }
        assert_eq!(at, wire.len());
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let wire = Frame::new(Opcode::Stats, 3, b"xyz".to_vec()).encode();
        for cut in 0..wire.len() {
            assert!(
                matches!(decode_frame(&wire[..cut]), Ok(None)),
                "prefix of {cut} bytes must ask for more, not error"
            );
        }
    }

    #[test]
    fn implausible_lengths_are_desync_errors() {
        let mut too_large = Vec::new();
        too_large.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        too_large.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            decode_frame(&too_large),
            Err(FrameError::TooLarge(_))
        ));
        let mut too_short = Vec::new();
        too_short.extend_from_slice(&3u32.to_le_bytes());
        too_short.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            decode_frame(&too_short),
            Err(FrameError::TooShort(3))
        ));
    }

    #[test]
    fn submit_payload_roundtrip_and_guards() {
        let p = SubmitPayload {
            fuel_cap: Some(512),
            universe: "untyped A' B' C'".into(),
            query: "td [x y z] => x y z |= td [x y z] => x y z".into(),
            progress: false,
        };
        assert_eq!(SubmitPayload::decode(&p.encode()).unwrap(), p);
        let none = SubmitPayload {
            fuel_cap: None,
            ..p.clone()
        };
        assert_eq!(SubmitPayload::decode(&none.encode()).unwrap(), none);
        // The progress flag rides a trailing byte; a flagless encoding
        // stays byte-identical to v1 (no flags byte at all).
        let streaming = SubmitPayload {
            progress: true,
            ..p.clone()
        };
        assert_eq!(streaming.encode().len(), p.encode().len() + 1);
        assert_eq!(SubmitPayload::decode(&streaming.encode()).unwrap(), streaming);
        // Truncations and trailing garbage are errors, never panics.
        let enc = p.encode();
        for cut in 0..enc.len() {
            assert!(SubmitPayload::decode(&enc[..cut]).is_err());
        }
        let mut trailing = enc.clone();
        trailing.push(0); // a zero flags byte is garbage, not "no flags"
        assert!(SubmitPayload::decode(&trailing).is_err());
        let mut unknown = enc.clone();
        unknown.push(0x02); // unknown flag bits are rejected
        assert!(SubmitPayload::decode(&unknown).is_err());
        let mut two = streaming.encode();
        two.push(1); // at most one flags byte
        assert!(SubmitPayload::decode(&two).is_err());
    }

    #[test]
    fn running_text_roundtrip() {
        let up = RunningUpdate {
            phase: "dovetail".into(),
            fuel: 96,
            rounds: 7,
            steps: 40,
            merges: 3,
            rows: 55,
            attempts: 12,
            join_build: 81,
            join_probe: 64,
            join_shards: 4,
            parts: 2,
            pending: 1,
        };
        let text = format!(
            "phase={} fuel={} rounds={} steps={} merges={} rows={} attempts={} jbuild={} jprobe={} jshards={} parts={} pending={}",
            up.phase, up.fuel, up.rounds, up.steps, up.merges, up.rows, up.attempts,
            up.join_build, up.join_probe, up.join_shards, up.parts, up.pending,
        );
        assert_eq!(parse_running_text(&text), up);
        // Unknown keys and junk tokens are skipped, missing keys default.
        let sparse = parse_running_text("fuel=5 future_key=9 garbage notanum=x");
        assert_eq!(sparse.fuel, 5);
        assert_eq!(sparse.phase, "");
        assert_eq!(sparse.parts, 0);
    }

    #[test]
    fn wire_answer_roundtrip() {
        for (imp, fin) in [
            (Answer::Yes, Answer::Yes),
            (Answer::No, Answer::No),
            (Answer::Unknown, Answer::Unknown),
        ] {
            for flags in 0..8u8 {
                let a = WireAnswer {
                    implication: imp,
                    finite_implication: fin,
                    from_cache: flags & 1 != 0,
                    cancelled: flags & 2 != 0,
                    expired: flags & 4 != 0,
                    fuel_spent: 123456789,
                };
                assert_eq!(WireAnswer::decode(&a.encode()).unwrap(), a);
            }
        }
        assert!(WireAnswer::decode(&[0, 0]).is_err());
        assert!(WireAnswer::decode(&[9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn stats_text_parses_counters() {
        let m = parse_stats_text("submitted=4 answered=2 cancelled=1 expired=1 pending=0");
        assert_eq!(m["submitted"], 4);
        assert_eq!(m["answered"] + m["cancelled"] + m["expired"], 4);
        assert_eq!(m["pending"], 0);
    }
}
