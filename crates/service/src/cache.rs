//! The bounded, memoizing answer cache — one instance per scheduler shard.
//!
//! A shard's cache unifies two roles behind one map keyed by canonical
//! query form ([`crate::canon`]):
//!
//! * **in-flight coalescing** — while a query runs, its key maps to the
//!   leader job's slot so identical submissions wait on it instead of
//!   chasing in parallel; in-flight entries are pinned (never counted
//!   against the bound, never evicted);
//! * **answer memoization** — a finished query's pair of three-valued
//!   answers is recorded under its key; later submissions hit without
//!   spending any fuel.
//!
//! Counterexample relations are *not* replayed from cache: their values
//! are interned in the original submitter's pool and would be meaningless
//! handles in another query's pool — the cache serves answers,
//! certificates stay with the job that computed them.
//!
//! # Bounded eviction
//!
//! Cached answers are bounded by a service-wide capacity shared across
//! shards through an atomic count: whenever an insert pushes the global
//! count over the bound, the inserting shard evicts from its own LRU order
//! until the count is back under (approximate global LRU — a shard only
//! ever evicts entries it owns, so no cross-shard locking). Recency is
//! tracked with a lazy queue of `(key, tick)` stamps: touching an entry
//! pushes a fresh stamp and stale stamps are skipped at eviction time,
//! keeping both hit and eviction amortized O(1). Expensive-to-recompute
//! answers (high recorded fuel cost) get one **reprieve**: the first time
//! the LRU clock reaches them they are re-stamped instead of dropped, so a
//! burst of cheap one-off queries cannot flush the answers that took real
//! chase work to establish.
//!
//! # Verified hits
//!
//! With verification enabled, every key hit is re-checked through the
//! isomorphism machinery (`typedtd_relational::isomorphic`) on the goal's
//! hypothesis tableau — an independent guard on the canonicalization
//! layer, cheap at tableau scale. A rejected hit is reported (and treated
//! as a miss) rather than served. Since keys normalize the query's column
//! order (see [`crate::canon`]'s column-permutation normalization), both
//! sides of the check are the *permuted* hypotheses — each side normalized
//! by its own canonical permutation, which is exactly the equivalence an
//! equal key certifies.

use crate::canon::QueryKey;
use std::collections::VecDeque;
use std::sync::Arc;
use typedtd_chase::Answer;
use typedtd_dependencies::TdOrEgd;
use typedtd_relational::{isomorphic, FxHashMap, Relation};

/// Fuel cost at or above which a cached answer earns one eviction
/// reprieve (see the module docs).
pub const REPRIEVE_COST: u64 = 8;

/// The cached pair of answers for one canonical query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CachedAnswer {
    /// Answer for unrestricted implication `Σ ⊨ σ`.
    pub implication: Answer,
    /// Answer for finite implication `Σ ⊨_f σ`.
    pub finite_implication: Answer,
}

/// One entry: a running leader or a finished answer.
enum Entry {
    /// The query is in flight; identical submissions coalesce onto the
    /// leader job at this slot (in the owning shard's slab). Pinned:
    /// neither counted against the capacity bound nor evictable.
    InFlight {
        /// Leader job's slot index in the owning shard.
        leader: u32,
    },
    /// The query is answered.
    Cached {
        answer: CachedAnswer,
        /// The goal's hypothesis tableau at insert time (columns already
        /// in the inserting query's canonical order), kept for hit
        /// verification via `isomorphic`.
        goal_hypothesis: Relation,
        /// Stamp of the latest touch; older stamps in the LRU queue for
        /// this key are stale and skipped.
        last_tick: u64,
        /// Remaining "not yet" passes when the LRU clock reaches this
        /// entry (1 for answers that cost ≥ [`REPRIEVE_COST`] fuel).
        reprieves: u8,
        /// Replayed from the persistence log at startup (hits on it count
        /// toward `ServiceStats::warm_hits`).
        warm: bool,
    },
}

/// The goal's hypothesis tableau as a relation (the verification witness).
pub fn goal_hypothesis(goal: &TdOrEgd) -> Relation {
    match goal {
        TdOrEgd::Td(t) => t.hypothesis_relation(),
        TdOrEgd::Egd(e) => e.hypothesis_relation(),
    }
}

/// Hit verification: value-bijection isomorphism, insensitive to the
/// universes' attribute *names*. `typedtd_relational::isomorphic`
/// requires identical universes, which is right for the paper's
/// constructions but too strict here: a canonical key certifies width
/// and typedness (both are part of the key), while attribute names never
/// enter the encoding — implication is invariant under renaming columns.
/// In particular the witness of an entry replayed from the persistence
/// log is rebuilt over a throwaway universe
/// ([`QueryKey::witness_relation`]) whose names can't match any live
/// query's. When the universes differ, the stored side is recast over
/// the probing side's universe (values are opaque ids; only the
/// bijection matters) before the row-level check runs.
pub fn witness_match(stored: &Relation, probe: &Relation) -> bool {
    if stored.universe() == probe.universe() {
        return isomorphic(stored, probe);
    }
    if stored.universe().width() != probe.universe().width() {
        return false;
    }
    let mut recast = Relation::new(probe.universe().clone());
    for row in stored.tuples() {
        recast.insert(row);
    }
    isomorphic(&recast, probe)
}

/// Result of a cache probe.
pub enum Probe {
    /// No entry under this key.
    Miss,
    /// A finished entry was found (and, if requested, verified).
    Hit {
        /// The cached answer pair.
        answer: CachedAnswer,
        /// The entry was replayed from the persistence log (a warm hit).
        warm: bool,
    },
    /// The key's query is in flight; coalesce onto the leader slot.
    InFlight(u32),
    /// An entry was found but failed isomorphism verification; served as a
    /// miss and counted separately — a hit here would be a canonicalization
    /// bug.
    Rejected,
}

/// One shard's slice of the answer cache. All methods are called under the
/// owning shard's lock. Keys are interned behind an `Arc` so the LRU
/// stamps a hit pushes clone a pointer, not the whole canonical Σ
/// encoding.
#[derive(Default)]
pub struct ShardCache {
    map: FxHashMap<Arc<QueryKey>, Entry>,
    /// Lazy LRU order: `(key, tick)` stamps, oldest first. Stale stamps
    /// (entry re-touched or gone) are dropped when the clock reaches them.
    lru: VecDeque<(Arc<QueryKey>, u64)>,
    tick: u64,
    /// Finished (`Cached`) entries in this shard.
    cached: usize,
}

impl ShardCache {
    /// Finished answers held by this shard.
    pub fn len(&self) -> usize {
        self.cached
    }

    /// `true` if no finished answers are held.
    pub fn is_empty(&self) -> bool {
        self.cached == 0
    }

    fn stamp(&mut self, key: &Arc<QueryKey>) -> u64 {
        self.tick += 1;
        self.lru.push_back((Arc::clone(key), self.tick));
        // Stale stamps are normally dropped at eviction time, but a cache
        // running *under* capacity never evicts — compact here so a hot
        // working set probed millions of times cannot grow the queue
        // beyond O(live entries). The stamp just pushed must survive
        // explicitly: the caller updates its entry's `last_tick` only
        // after this returns (on insert the entry doesn't even exist
        // yet), so the map cannot vouch for it.
        if self.lru.len() > 2 * self.map.len() + 8 {
            let fresh = self.tick;
            let map = &self.map;
            self.lru.retain(|(k, t)| {
                *t == fresh
                    || matches!(map.get(k), Some(Entry::Cached { last_tick, .. }) if last_tick == t)
            });
        }
        self.tick
    }

    /// Probes for `key`. A finished hit is re-stamped most-recently-used.
    /// With `verify: Some(goal_hyp)`, a key hit must also pass the
    /// isomorphism cross-check against `goal_hyp` — the probing query's
    /// hypothesis with columns already in *its* canonical order. `None`
    /// skips verification (and lets callers skip *building* the witness
    /// on the hit path).
    pub fn probe(&mut self, key: &QueryKey, verify: Option<&Relation>) -> Probe {
        match self.map.get_key_value(key) {
            None => Probe::Miss,
            Some((_, Entry::InFlight { leader })) => Probe::InFlight(*leader),
            Some((
                interned,
                Entry::Cached {
                    answer,
                    goal_hypothesis: hyp,
                    warm,
                    ..
                },
            )) => {
                if let Some(goal_hyp) = verify {
                    if !witness_match(hyp, goal_hyp) {
                        return Probe::Rejected;
                    }
                }
                let answer = *answer;
                let warm = *warm;
                let interned = Arc::clone(interned);
                let tick = self.stamp(&interned);
                let Some(Entry::Cached { last_tick, .. }) = self.map.get_mut(key) else {
                    unreachable!("entry probed above")
                };
                *last_tick = tick;
                Probe::Hit { answer, warm }
            }
        }
    }

    /// Marks `key` in flight with `leader` as the coalescing target.
    /// Callers guarantee the key is absent (a probe ran under the same
    /// lock).
    pub fn insert_inflight(&mut self, key: QueryKey, leader: u32) {
        let prior = self.map.insert(Arc::new(key), Entry::InFlight { leader });
        debug_assert!(prior.is_none(), "in-flight insert over a live entry");
    }

    /// Drops the in-flight marker for `key` (leader finished without a
    /// cacheable answer, expired, or was retired). No-op on finished
    /// entries.
    pub fn clear_inflight(&mut self, key: &QueryKey) {
        if let Some(Entry::InFlight { .. }) = self.map.get(key) {
            self.map.remove(key);
        }
    }

    /// Records the finished answer for `key`, replacing its in-flight
    /// marker. Callers only record *definite* answers (Yes/No hold of
    /// every isomorphic presentation of the query; Unknown is a budget
    /// artifact and is never cached), and the scheduler guarantees at most
    /// one in-flight leader per key, so a conflicting overwrite is
    /// impossible. `goal_hyp` is the goal's hypothesis tableau with
    /// columns already in the inserting query's canonical order (the
    /// verification witness); `cost` is the fuel the answer took (drives
    /// the eviction reprieve). Returns the interned key when a fresh entry
    /// was added (callers pass it back as the eviction-protect handle
    /// without re-cloning the encoding), `None` when the key was already
    /// answered.
    pub fn insert(
        &mut self,
        key: QueryKey,
        answer: CachedAnswer,
        goal_hyp: Relation,
        cost: u64,
    ) -> Option<Arc<QueryKey>> {
        self.insert_entry(key, answer, goal_hyp, cost, false)
    }

    /// As [`ShardCache::insert`], but marks the entry *warm* — replayed
    /// from the persistence log at startup. Hits on warm entries are
    /// counted in `ServiceStats::warm_hits` (the warm-restart signal);
    /// everything else — verification, LRU, reprieves — behaves exactly
    /// like a freshly computed entry.
    pub fn insert_warm(
        &mut self,
        key: QueryKey,
        answer: CachedAnswer,
        goal_hyp: Relation,
        cost: u64,
    ) -> Option<Arc<QueryKey>> {
        self.insert_entry(key, answer, goal_hyp, cost, true)
    }

    fn insert_entry(
        &mut self,
        key: QueryKey,
        answer: CachedAnswer,
        goal_hyp: Relation,
        cost: u64,
        warm: bool,
    ) -> Option<Arc<QueryKey>> {
        if matches!(self.map.get(&key), Some(Entry::Cached { .. })) {
            return None;
        }
        let key = Arc::new(key);
        let tick = self.stamp(&key);
        self.map.insert(
            Arc::clone(&key),
            Entry::Cached {
                answer,
                goal_hypothesis: goal_hyp,
                last_tick: tick,
                reprieves: u8::from(cost >= REPRIEVE_COST),
                warm,
            },
        );
        self.cached += 1;
        Some(key)
    }

    /// Evicts the least-recently-used finished entry (honoring reprieves).
    /// Returns `false` when nothing is evictable — in-flight entries are
    /// pinned and never considered.
    pub fn evict_one(&mut self) -> bool {
        self.evict_one_protecting(None)
    }

    /// As [`ShardCache::evict_one`], but never evicts `protect` — the
    /// interned handle of the entry an over-capacity insert just added
    /// (returned by [`ShardCache::insert`]; compared by `Arc` identity,
    /// not structurally). Without the protection a capacity smaller than
    /// the shard count makes every fresh insert its own immediate
    /// eviction victim (it is the only LRU entry its shard owns) while
    /// hot shards keep stale answers. A protected entry encountered by
    /// the LRU clock is re-stamped most-recently-used; meeting it a
    /// second time means nothing else is evictable.
    pub fn evict_one_protecting(&mut self, protect: Option<&Arc<QueryKey>>) -> bool {
        let mut protected_seen = false;
        let mut reprieved_since = false;
        while let Some((key, tick)) = self.lru.pop_front() {
            match self.map.get_mut(&key) {
                Some(Entry::Cached {
                    last_tick,
                    reprieves,
                    ..
                }) if *last_tick == tick => {
                    if protect.is_some_and(|p| Arc::ptr_eq(p, &key)) {
                        self.tick += 1;
                        *last_tick = self.tick;
                        let fresh = self.tick;
                        self.lru.push_back((key, fresh));
                        if protected_seen && !reprieved_since {
                            // A full cycle with no reprieve granted in
                            // between: the fresh entry is all that's left.
                            return false;
                        }
                        protected_seen = true;
                        reprieved_since = false;
                        continue;
                    }
                    if *reprieves > 0 {
                        *reprieves -= 1;
                        reprieved_since = true;
                        self.tick += 1;
                        *last_tick = self.tick;
                        let tick = self.tick;
                        self.lru.push_back((key, tick));
                        continue;
                    }
                    self.map.remove(&key);
                    self.cached -= 1;
                    return true;
                }
                // Stale stamp: re-touched since, in flight, or gone.
                _ => continue,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_dependencies::td_from_names;
    use typedtd_relational::{Universe, ValuePool};

    fn keyed_td(seed: &str) -> (QueryKey, TdOrEgd) {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        let td = TdOrEgd::Td(td_from_names(
            &u,
            &mut p,
            &[&[seed, "y", "z"], &[seed, seed, "w"]],
            &[seed, "y", "w"],
        ));
        (crate::canon::query_key(&[], &td), td)
    }

    fn distinct_keyed_tds(n: usize) -> Vec<(QueryKey, TdOrEgd)> {
        // Vary the hypothesis shape via repeated-variable patterns so the
        // canonical keys genuinely differ.
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        (0..n)
            .map(|i| {
                let rows: Vec<Vec<String>> = (0..=i)
                    .map(|r| vec!["x".to_string(), format!("y{r}"), format!("z{r}")])
                    .collect();
                let row_refs: Vec<Vec<&str>> =
                    rows.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
                let slices: Vec<&[&str]> = row_refs.iter().map(Vec::as_slice).collect();
                let td =
                    TdOrEgd::Td(td_from_names(&u, &mut p, &slices, &["x", "y0", "z0"]));
                (crate::canon::query_key(&[], &td), td)
            })
            .collect()
    }

    const YES: CachedAnswer = CachedAnswer {
        implication: Answer::Yes,
        finite_implication: Answer::Yes,
    };

    #[test]
    fn lru_evicts_coldest_first() {
        let mut cache = ShardCache::default();
        let deps = distinct_keyed_tds(3);
        for (k, g) in &deps {
            assert!(cache.insert(k.clone(), YES, goal_hypothesis(g), 0).is_some());
        }
        // Touch the first entry: the second becomes coldest.
        assert!(matches!(
            cache.probe(&deps[0].0, None),
            Probe::Hit { .. }
        ));
        assert!(cache.evict_one());
        assert_eq!(cache.len(), 2);
        assert!(matches!(
            cache.probe(&deps[1].0, None),
            Probe::Miss
        ));
        assert!(matches!(
            cache.probe(&deps[0].0, None),
            Probe::Hit { .. }
        ));
    }

    #[test]
    fn inflight_entries_are_pinned() {
        let mut cache = ShardCache::default();
        let (k, _g) = keyed_td("x");
        cache.insert_inflight(k.clone(), 7);
        assert!(!cache.evict_one(), "nothing evictable: in-flight is pinned");
        let deps = distinct_keyed_tds(2);
        for (dk, dg) in &deps {
            cache.insert(dk.clone(), YES, goal_hypothesis(dg), 0);
        }
        assert!(cache.evict_one());
        assert!(cache.evict_one());
        assert!(!cache.evict_one());
        let (k2, _g2) = keyed_td("x");
        assert!(matches!(cache.probe(&k2, None), Probe::InFlight(7)));
    }

    #[test]
    fn hot_hits_do_not_grow_the_stamp_queue() {
        let mut cache = ShardCache::default();
        let deps = distinct_keyed_tds(2);
        for (k, g) in &deps {
            cache.insert(k.clone(), YES, goal_hypothesis(g), 0);
        }
        // An under-capacity cache never evicts, so the stamp queue must
        // self-compact instead of recording every hit forever.
        for _ in 0..10_000 {
            assert!(matches!(
                cache.probe(&deps[0].0, None),
                Probe::Hit { .. }
            ));
        }
        assert!(
            cache.lru.len() <= 2 * cache.map.len() + 8,
            "stamp queue must stay O(live entries), got {}",
            cache.lru.len()
        );
        // Compaction must not orphan live stamps: both entries stay
        // evictable (cold deps[1] goes first), and nothing is left behind.
        assert!(cache.evict_one(), "entries must remain evictable");
        assert!(matches!(
            cache.probe(&deps[1].0, None),
            Probe::Miss
        ));
        assert!(cache.evict_one(), "the hot entry is evictable too");
        assert!(!cache.evict_one());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn expensive_answers_get_one_reprieve() {
        let mut cache = ShardCache::default();
        let deps = distinct_keyed_tds(2);
        cache.insert(deps[0].0.clone(), YES, goal_hypothesis(&deps[0].1), REPRIEVE_COST);
        cache.insert(deps[1].0.clone(), YES, goal_hypothesis(&deps[1].1), 0);
        // Entry 0 is colder but cost-protected: the cheap entry 1 goes
        // first.
        assert!(cache.evict_one());
        assert!(matches!(
            cache.probe(&deps[0].0, None),
            Probe::Hit { .. }
        ));
        assert!(matches!(
            cache.probe(&deps[1].0, None),
            Probe::Miss
        ));
    }
}
