//! The memoizing answer cache, keyed by canonical query form.
//!
//! A hit returns the cached pair of three-valued answers. Counterexample
//! relations are *not* replayed from cache: their values are interned in
//! the original submitter's pool and would be meaningless handles in
//! another query's pool — the cache serves answers, certificates stay with
//! the job that computed them.
//!
//! With verification enabled, every key hit is re-checked through the
//! isomorphism machinery (`typedtd_relational::isomorphic`) on the goal's
//! hypothesis tableau — an independent guard on the canonicalization layer,
//! cheap at tableau scale. A rejected hit is reported (and treated as a
//! miss) rather than served.

use crate::canon::QueryKey;
use typedtd_chase::Answer;
use typedtd_dependencies::TdOrEgd;
use typedtd_relational::{isomorphic, FxHashMap, Relation};

/// The cached pair of answers for one canonical query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CachedAnswer {
    /// Answer for unrestricted implication `Σ ⊨ σ`.
    pub implication: Answer,
    /// Answer for finite implication `Σ ⊨_f σ`.
    pub finite_implication: Answer,
}

struct CacheEntry {
    answer: CachedAnswer,
    /// The goal's hypothesis tableau at insert time, kept for hit
    /// verification via `isomorphic`.
    goal_hypothesis: Relation,
}

/// Answer cache keyed by [`QueryKey`].
#[derive(Default)]
pub struct AnswerCache {
    map: FxHashMap<QueryKey, CacheEntry>,
}

/// The goal's hypothesis tableau as a relation (the verification witness).
pub fn goal_hypothesis(goal: &TdOrEgd) -> Relation {
    match goal {
        TdOrEgd::Td(t) => t.hypothesis_relation(),
        TdOrEgd::Egd(e) => e.hypothesis_relation(),
    }
}

/// Result of a cache probe.
pub enum Probe {
    /// No entry under this key.
    Miss,
    /// An entry was found (and, if requested, verified).
    Hit(CachedAnswer),
    /// An entry was found but failed isomorphism verification; served as a
    /// miss and counted separately — a hit here would be a canonicalization
    /// bug.
    Rejected,
}

impl AnswerCache {
    /// Number of cached canonical queries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Probes the cache. With `verify`, a key hit must also pass the
    /// isomorphism cross-check of the goal hypothesis tableaux.
    pub fn probe(&self, key: &QueryKey, goal: &TdOrEgd, verify: bool) -> Probe {
        match self.map.get(key) {
            None => Probe::Miss,
            Some(entry) => {
                if verify && !isomorphic(&entry.goal_hypothesis, &goal_hypothesis(goal)) {
                    Probe::Rejected
                } else {
                    Probe::Hit(entry.answer)
                }
            }
        }
    }

    /// Records the answer for a canonical query. Callers only record
    /// *definite* answers (Yes/No hold of every isomorphic presentation of
    /// the query; Unknown is a budget artifact and is never cached), and
    /// the scheduler guarantees at most one in-flight leader per key
    /// (identical queries coalesce, verify-rejected keys are quarantined),
    /// so first-writer-wins can never entomb a conflicting verdict.
    pub fn insert(&mut self, key: QueryKey, answer: CachedAnswer, goal: &TdOrEgd) {
        self.map.entry(key).or_insert_with(|| CacheEntry {
            answer,
            goal_hypothesis: goal_hypothesis(goal),
        });
    }
}
