//! Crash-safe persistence for the answer cache: an append-only log of
//! canonical-key → definite-answer records.
//!
//! Every definite (Yes/No) answer the service computes is a certificate —
//! implication is monotone in Σ, so a definite answer for a canonical
//! query is sound forever. The log records exactly those answers as they
//! enter the [`crate::cache::ShardCache`]; fuel-dependent `Unknown`s (and
//! cancelled/expired jobs) are *never* written, because they are budget
//! artifacts that a differently-scheduled run could answer.
//!
//! # File format
//!
//! ```text
//! magic   8 bytes  b"TDTDLOG\x01"            (format version in the last byte)
//! record  u32 LE body_len · u32 LE checksum · body
//! body    u8 implication (0=yes 1=no)
//!         u8 finite_implication (0=yes 1=no 2=unknown)
//!         u64 LE cost (fuel the answer took; drives the eviction reprieve)
//!         QueryKey encoding (see `QueryKey::encode_into`)
//! ```
//!
//! The checksum is 64-bit FNV-1a over the body, folded to 32 bits.
//!
//! # Replay rules (torn-write tolerance)
//!
//! Replay scans records front to back and stops at the first anomaly: a
//! truncated header, an oversized or short length, a checksum mismatch, or
//! a body that doesn't decode. Everything before the anomaly is recovered;
//! everything after is dropped — a torn or corrupted tail loses a suffix,
//! never panics, and never desyncs (on open the file is *healed* by
//! truncating to the valid prefix, so later appends can't be orphaned
//! behind garbage). A missing file is an empty log; a file with the wrong
//! magic is not our log and replays empty (the writer then starts it
//! fresh).
//!
//! # Fault injection and degraded mode
//!
//! [`FaultPlan`] wraps the writer with deterministic faults (in keeping
//! with the repo's offline-shim pattern): short writes, hard I/O errors
//! from a chosen byte offset, and a simulated crash that silently drops
//! everything past a chosen offset. A failed append truncates back to the
//! last whole-record boundary (so the log stays replayable) and is counted
//! by the caller in `ServiceStats::persist_errors`; after
//! [`DEGRADE_AFTER`] consecutive failures the log flips to **degraded
//! read-only mode** — the in-memory cache keeps serving traffic, appends
//! become no-ops, and no job ever fails because the disk did.

use crate::cache::CachedAnswer;
use crate::canon::QueryKey;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use typedtd_chase::Answer;

/// Log file magic; the final byte is the format version.
pub const LOG_MAGIC: [u8; 8] = *b"TDTDLOG\x01";

/// Upper bound on one record's body length (mirrors the wire frame cap);
/// a bigger length word is corruption, not a big record.
const MAX_RECORD_LEN: u32 = 1 << 20;

/// Consecutive append failures before the log degrades to read-only
/// in-memory mode.
pub const DEGRADE_AFTER: u32 = 3;

/// Deterministic fault injection for the log writer. All offsets are
/// absolute *logical* log offsets (header included), as the writer
/// believes them — a crash-dropped byte still advances the logical
/// offset, exactly like a buffered write the process never flushed.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Cap each underlying write call at this many bytes (short writes);
    /// `None` writes whole records at once.
    pub short_write: Option<usize>,
    /// Logical offset at/after which every write attempt fails with an
    /// I/O error (the failing-disk scenario that drives degraded mode).
    pub error_at: Option<u64>,
    /// Logical offset past which written bytes are silently discarded —
    /// a simulated crash mid-record: the writer believes they landed, the
    /// file ends torn.
    pub crash_at: Option<u64>,
}

/// Where (and under which faults) the service persists definite answers.
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// Log file path; created (with its magic header) if absent.
    pub path: PathBuf,
    /// Fault injection applied to record appends (not to replay).
    pub fault: FaultPlan,
}

impl PersistConfig {
    /// A fault-free log at `path`.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            fault: FaultPlan::default(),
        }
    }
}

/// One recovered record: a canonical query with its definite answers and
/// the fuel the original computation spent.
#[derive(Clone, Debug)]
pub struct ReplayedRecord {
    /// The canonical query key.
    pub key: QueryKey,
    /// The definite answer pair (implication is never `Unknown` here).
    pub answer: CachedAnswer,
    /// Fuel the original computation spent (drives the eviction reprieve
    /// on re-insert).
    pub cost: u64,
}

/// The result of replaying a log: the recovered prefix and where it ends.
#[derive(Debug)]
pub struct Replay {
    /// Records of the valid prefix, in append order.
    pub records: Vec<ReplayedRecord>,
    /// Byte length of the valid prefix (0 when the header itself is
    /// missing or corrupt; the writer then rebuilds the file).
    pub valid_len: u64,
}

/// Replays the log at `path` (see the module docs for the rules). A
/// missing file is an empty log. Never panics on corrupt input.
pub fn replay_log(path: &Path) -> io::Result<Replay> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(Replay {
                records: Vec::new(),
                valid_len: 0,
            })
        }
        Err(e) => return Err(e),
    };
    Ok(replay_bytes(&bytes))
}

/// Replay over an in-memory image (the property tests corrupt images
/// directly).
pub fn replay_bytes(bytes: &[u8]) -> Replay {
    if bytes.len() < LOG_MAGIC.len() || bytes[..LOG_MAGIC.len()] != LOG_MAGIC {
        return Replay {
            records: Vec::new(),
            valid_len: 0,
        };
    }
    let mut at = LOG_MAGIC.len();
    let mut records = Vec::new();
    while let Some(rest) = bytes.get(at..) {
        if rest.len() < 8 {
            break; // torn record header
        }
        let body_len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let sum = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if body_len > MAX_RECORD_LEN || (body_len as usize) > rest.len() - 8 {
            break; // corrupt length word or torn body
        }
        let body = &rest[8..8 + body_len as usize];
        if checksum(body) != sum {
            break; // flipped bits
        }
        let Some(rec) = decode_body(body) else {
            break; // checksum collision on garbage: still just a lost tail
        };
        records.push(rec);
        at += 8 + body_len as usize;
    }
    Replay {
        records,
        valid_len: at as u64,
    }
}

/// 64-bit FNV-1a folded to 32 bits.
fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

fn answer_byte(a: Answer) -> u8 {
    match a {
        Answer::Yes => 0,
        Answer::No => 1,
        Answer::Unknown => 2,
    }
}

fn answer_from(b: u8) -> Option<Answer> {
    match b {
        0 => Some(Answer::Yes),
        1 => Some(Answer::No),
        2 => Some(Answer::Unknown),
        _ => None,
    }
}

/// One framed record: `len · checksum · body`.
fn encode_record(key: &QueryKey, answer: CachedAnswer, cost: u64) -> Vec<u8> {
    debug_assert_ne!(
        answer.implication,
        Answer::Unknown,
        "only definite answers are persisted"
    );
    let mut body = Vec::with_capacity(64);
    body.push(answer_byte(answer.implication));
    body.push(answer_byte(answer.finite_implication));
    body.extend_from_slice(&cost.to_le_bytes());
    key.encode_into(&mut body);
    let mut rec = Vec::with_capacity(body.len() + 8);
    rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
    rec.extend_from_slice(&checksum(&body).to_le_bytes());
    rec.extend_from_slice(&body);
    rec
}

fn decode_body(body: &[u8]) -> Option<ReplayedRecord> {
    if body.len() < 10 {
        return None;
    }
    let implication = match body[0] {
        // A persisted implication answer must be definite.
        0 => Answer::Yes,
        1 => Answer::No,
        _ => return None,
    };
    let finite_implication = answer_from(body[1])?;
    let cost = u64::from_le_bytes(body[2..10].try_into().expect("8 bytes"));
    let (key, used) = QueryKey::decode(&body[10..])?;
    if 10 + used != body.len() {
        return None; // trailing garbage under a colliding checksum
    }
    Some(ReplayedRecord {
        key,
        answer: CachedAnswer {
            implication,
            finite_implication,
        },
        cost,
    })
}

/// The open, heal-on-failure log writer. Shared across scheduler shards
/// (appends take an internal lock; they happen once per *fresh* definite
/// answer, so the lock is cold).
pub struct PersistLog {
    writer: Mutex<LogWriter>,
    degraded: AtomicBool,
}

struct LogWriter {
    /// `None` once degraded mode (or an unhealable failure) dropped it.
    file: Option<File>,
    plan: FaultPlan,
    /// Logical append offset — what the writer believes, including bytes
    /// a simulated crash silently dropped.
    offset: u64,
    /// Bytes durably in the file.
    actual: u64,
    /// File length at the last successful whole-record append: the heal
    /// point a failed partial write truncates back to.
    good_len: u64,
    /// Consecutive failed appends (reset by any success).
    failures: u32,
}

impl PersistLog {
    /// Opens (or creates) the log at `cfg.path`: replays the valid
    /// prefix, heals the file by truncating any torn tail, and positions
    /// the writer at the healed end. Returns the handle plus the
    /// replayed records for the caller to seed its cache with.
    pub fn open(cfg: &PersistConfig) -> io::Result<(Self, Vec<ReplayedRecord>)> {
        let replay = replay_log(&cfg.path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&cfg.path)?;
        let start = if replay.valid_len < LOG_MAGIC.len() as u64 {
            // Empty, foreign, or header-corrupt file: start it fresh.
            file.set_len(0)?;
            file.write_all(&LOG_MAGIC)?;
            LOG_MAGIC.len() as u64
        } else {
            file.set_len(replay.valid_len)?;
            replay.valid_len
        };
        file.seek(SeekFrom::End(0))?;
        Ok((
            Self {
                writer: Mutex::new(LogWriter {
                    file: Some(file),
                    plan: cfg.fault.clone(),
                    offset: start,
                    actual: start,
                    good_len: start,
                    failures: 0,
                }),
                degraded: AtomicBool::new(false),
            },
            replay.records,
        ))
    }

    /// Appends one definite-answer record. Returns `false` only when this
    /// append actually failed (the caller counts it in
    /// `ServiceStats::persist_errors`); a degraded log skips silently and
    /// returns `true` — degradation was already accounted when it
    /// happened, and served traffic must not keep paying for a dead disk.
    pub fn append(&self, key: &QueryKey, answer: CachedAnswer, cost: u64) -> bool {
        if self.degraded.load(Ordering::Relaxed) {
            return true;
        }
        let mut w = self.writer.lock().expect("persist writer lock");
        let rec = encode_record(key, answer, cost);
        match w.write_record(&rec) {
            Ok(()) => {
                w.failures = 0;
                true
            }
            Err(_) => {
                w.failures += 1;
                if w.failures >= DEGRADE_AFTER || w.file.is_none() {
                    w.file = None;
                    self.degraded.store(true, Ordering::Relaxed);
                }
                false
            }
        }
    }

    /// `true` once persistent write failure flipped the log to read-only
    /// in-memory mode (appends are no-ops from then on).
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }
}

impl LogWriter {
    /// Writes one whole record through the fault plan, healing the file
    /// back to the last record boundary on failure so a later append (or
    /// the next replay) never sees a half-record followed by live data.
    fn write_record(&mut self, rec: &[u8]) -> io::Result<()> {
        match self.write_all_faulty(rec) {
            Ok(()) => {
                self.good_len = self.actual;
                Ok(())
            }
            Err(e) => {
                let healed = self
                    .file
                    .as_mut()
                    .map(|f| {
                        f.set_len(self.good_len)
                            .and_then(|()| f.seek(SeekFrom::End(0)))
                            .is_ok()
                    })
                    .unwrap_or(false);
                if healed {
                    self.actual = self.good_len;
                    self.offset = self.good_len;
                } else {
                    // Unhealable: stop writing entirely rather than risk
                    // desyncing the log.
                    self.file = None;
                }
                Err(e)
            }
        }
    }

    fn write_all_faulty(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut at = 0usize;
        while at < buf.len() {
            let file = self
                .file
                .as_mut()
                .ok_or_else(|| io::Error::other("persist writer gone"))?;
            let mut len = buf.len() - at;
            if let Some(cap) = self.plan.short_write {
                len = len.min(cap.max(1));
            }
            if let Some(err_at) = self.plan.error_at {
                if self.offset >= err_at {
                    return Err(io::Error::other("injected write error"));
                }
                // Let the failure land exactly at the configured offset:
                // this write stays short, the next attempt errors.
                len = len.min((err_at - self.offset) as usize);
            }
            let durable = match self.plan.crash_at {
                Some(c) if self.offset >= c => 0,
                Some(c) => len.min((c - self.offset) as usize),
                None => len,
            };
            if durable > 0 {
                file.write_all(&buf[at..at + durable])?;
                self.actual += durable as u64;
            }
            self.offset += len as u64;
            at += len;
        }
        if let Some(file) = self.file.as_mut() {
            file.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typedtd_dependencies::{td_from_names, TdOrEgd};
    use typedtd_relational::{Universe, ValuePool};

    fn keys(n: usize) -> Vec<QueryKey> {
        let u = Universe::untyped_abc();
        let mut p = ValuePool::new(u.clone());
        (0..n)
            .map(|i| {
                let rows: Vec<Vec<String>> = (0..=i)
                    .map(|r| vec!["x".to_string(), format!("y{r}"), format!("z{r}")])
                    .collect();
                let row_refs: Vec<Vec<&str>> = rows
                    .iter()
                    .map(|r| r.iter().map(String::as_str).collect())
                    .collect();
                let slices: Vec<&[&str]> = row_refs.iter().map(Vec::as_slice).collect();
                let td = TdOrEgd::Td(td_from_names(&u, &mut p, &slices, &["x", "y0", "z0"]));
                crate::canon::query_key(std::slice::from_ref(&td), &td)
            })
            .collect()
    }

    const YES: CachedAnswer = CachedAnswer {
        implication: Answer::Yes,
        finite_implication: Answer::Yes,
    };
    const NO: CachedAnswer = CachedAnswer {
        implication: Answer::No,
        finite_implication: Answer::No,
    };

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "typedtd-persist-{tag}-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id(),
        ))
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let cfg = PersistConfig::at(&path);
        let ks = keys(3);
        {
            let (log, replayed) = PersistLog::open(&cfg).expect("open fresh");
            assert!(replayed.is_empty());
            assert!(log.append(&ks[0], YES, 0));
            assert!(log.append(&ks[1], NO, 17));
            assert!(log.append(&ks[2], YES, 99));
            assert!(!log.degraded());
        }
        let (_log, replayed) = PersistLog::open(&cfg).expect("reopen");
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[0].key, ks[0]);
        assert_eq!(replayed[1].key, ks[1]);
        assert_eq!(replayed[1].answer, NO);
        assert_eq!(replayed[1].cost, 17);
        assert_eq!(replayed[2].key, ks[2]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_replays_to_the_valid_prefix_and_heals() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let cfg = PersistConfig::at(&path);
        let ks = keys(3);
        {
            let (log, _) = PersistLog::open(&cfg).expect("open");
            for k in &ks {
                assert!(log.append(k, YES, 0));
            }
        }
        let full = std::fs::read(&path).expect("log bytes");
        // Tear the file mid-final-record.
        std::fs::write(&path, &full[..full.len() - 3]).expect("tear");
        let replay = replay_log(&path).expect("replay");
        assert_eq!(replay.records.len(), 2, "torn tail loses exactly its record");
        // Reopen heals (truncates) and appends cleanly after the prefix.
        {
            let (log, replayed) = PersistLog::open(&cfg).expect("heal");
            assert_eq!(replayed.len(), 2);
            assert!(log.append(&ks[2], NO, 5));
        }
        let replay = replay_log(&path).expect("replay healed");
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[2].answer, NO);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simulated_crash_drops_the_suffix_silently() {
        let path = temp_path("crash");
        let _ = std::fs::remove_file(&path);
        let ks = keys(3);
        // Learn where record 2 starts, then crash a few bytes into it.
        let boundary = {
            let cfg = PersistConfig::at(&path);
            let (log, _) = PersistLog::open(&cfg).expect("open");
            assert!(log.append(&ks[0], YES, 0));
            std::fs::metadata(&path).expect("meta").len()
        };
        let _ = std::fs::remove_file(&path);
        let cfg = PersistConfig {
            path: path.clone(),
            fault: FaultPlan {
                crash_at: Some(boundary + 4),
                ..FaultPlan::default()
            },
        };
        {
            let (log, _) = PersistLog::open(&cfg).expect("open faulted");
            // All three appends "succeed" — the process just dies before
            // the bytes past the crash point ever reach the disk.
            assert!(log.append(&ks[0], YES, 0));
            assert!(log.append(&ks[1], YES, 0));
            assert!(log.append(&ks[2], YES, 0));
            assert!(!log.degraded());
        }
        let replay = replay_log(&path).expect("replay");
        assert_eq!(replay.records.len(), 1, "the torn record and everything after are lost");
        assert_eq!(replay.records[0].key, ks[0]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persistent_write_errors_degrade_to_read_only() {
        let path = temp_path("degrade");
        let _ = std::fs::remove_file(&path);
        let cfg = PersistConfig {
            path: path.clone(),
            fault: FaultPlan {
                short_write: Some(5),
                error_at: Some(LOG_MAGIC.len() as u64 + 11),
                ..FaultPlan::default()
            },
        };
        let ks = keys(1);
        let (log, _) = PersistLog::open(&cfg).expect("open");
        for i in 0..DEGRADE_AFTER {
            assert!(!log.degraded(), "not degraded before failure {i}");
            assert!(!log.append(&ks[0], YES, 0), "append under error_at must fail");
        }
        assert!(log.degraded(), "consecutive failures flip degraded mode");
        // Degraded appends are silent no-ops, not fresh errors.
        assert!(log.append(&ks[0], YES, 0));
        // The healed file is still a valid (empty) log.
        let replay = replay_log(&path).expect("replay");
        assert_eq!(replay.records.len(), 0);
        assert_eq!(replay.valid_len, LOG_MAGIC.len() as u64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_or_headerless_files_replay_empty() {
        assert_eq!(replay_bytes(b"").records.len(), 0);
        assert_eq!(replay_bytes(b"short").records.len(), 0);
        assert_eq!(replay_bytes(b"NOTOURLOGFILE###").records.len(), 0);
        let mut flipped = LOG_MAGIC.to_vec();
        flipped[3] ^= 0xff;
        assert_eq!(replay_bytes(&flipped).valid_len, 0);
    }
}
