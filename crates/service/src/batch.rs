//! Batch front end: newline-delimited query files over the
//! `typedtd_dependencies::parser` syntax.
//!
//! ```text
//! # comments and blank lines are skipped
//! @universe A B C              # typed universe (the default discipline)
//! A -> B & B -> C |= A -> C    # Σ on the left of |=, goal on the right
//! @universe untyped A' B' C'   # switch universe mid-file
//! td [x y1 z1 ; x y2 z2] => x y1 z2 |= A' ->> B'
//! |= td [x y z] => x y z       # empty Σ is allowed
//! ```
//!
//! Σ entries are separated by `&` (`;` already separates tableau rows
//! inside `td [...]`/`egd [...]` bodies). Every well-formed query line is
//! parsed into its own [`ValuePool`], normalized into the td/egd fragment,
//! and submitted as one job per goal part through the shared
//! [`ImplicationClient`]; [`BatchQuery::conjoined`] folds the parts back
//! into a single verdict, exactly like `decide_dependencies`. Malformed
//! lines do **not** abort the batch: each is recorded as a
//! [`BatchError`] with its line number and the rest of the file is still
//! submitted — a production query file with one typo should not lose the
//! other thousand answers.

use crate::service::{ImplicationClient, JobHandle, JobStatus, QuerySpec};
use std::sync::Arc;
use typedtd_chase::Answer;
use typedtd_dependencies::{parse_dependency, Dependency, TdOrEgd};
use typedtd_relational::{Universe, ValuePool};

/// One submitted query line.
#[derive(Debug)]
pub struct BatchQuery {
    /// 1-based line number in the source text.
    pub line: usize,
    /// The query as written.
    pub text: String,
    /// One job handle per normalized goal part (empty when the goal
    /// normalizes to nothing and is vacuously implied).
    pub jobs: Vec<JobHandle>,
}

/// One malformed line, reported without aborting the batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

/// A parsed-and-submitted batch.
#[derive(Debug, Default)]
pub struct Batch {
    /// Successfully submitted queries, in file order.
    pub queries: Vec<BatchQuery>,
    /// Malformed lines, in file order.
    pub errors: Vec<BatchError>,
}

/// A batch query's folded verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchVerdict {
    /// Conjunction over parts of `Σ ⊨ σ`.
    pub implication: Answer,
    /// Conjunction over parts of `Σ ⊨_f σ`.
    pub finite_implication: Answer,
    /// `true` if every non-vacuous part was answered without fresh fuel.
    pub from_cache: bool,
}

impl BatchQuery {
    /// Folds the parts' answers, or `None` while any part is pending. A
    /// part whose coalescing leader was cancelled resolves as `Unknown`
    /// (no answer was produced) rather than pending forever, so batch
    /// drivers that loop until every verdict is in still terminate.
    pub fn conjoined(&self) -> Option<BatchVerdict> {
        let mut verdict = BatchVerdict {
            implication: Answer::Yes,
            finite_implication: Answer::Yes,
            from_cache: !self.jobs.is_empty(),
        };
        for handle in &self.jobs {
            let (implication, finite_implication, from_cache) = match handle.poll() {
                JobStatus::Done(outcome) => (
                    outcome.implication,
                    outcome.finite_implication,
                    outcome.from_cache,
                ),
                JobStatus::Cancelled => (Answer::Unknown, Answer::Unknown, false),
                JobStatus::Pending => return None,
                JobStatus::Retired => unreachable!("the batch owns its job handles"),
            };
            verdict.implication = verdict.implication.and(implication);
            verdict.finite_implication = verdict.finite_implication.and(finite_implication);
            verdict.from_cache &= from_cache;
        }
        Some(verdict)
    }
}

/// Parses one query line into `(Σ, goal)` under `universe`.
///
/// # Errors
/// Returns a description of the first syntax problem.
pub fn parse_query_line(
    universe: &Arc<Universe>,
    pool: &mut ValuePool,
    line: &str,
) -> Result<(Vec<Dependency>, Dependency), String> {
    let (sigma_part, goal_part) = line
        .split_once("|=")
        .ok_or_else(|| format!("query needs 'SIGMA |= GOAL' (missing |=): {line:?}"))?;
    if goal_part.contains("|=") {
        return Err(format!("query has more than one |=: {line:?}"));
    }
    let mut sigma = Vec::new();
    for spec in sigma_part.split('&') {
        let spec = spec.trim();
        if spec.is_empty() {
            continue;
        }
        sigma.push(parse_dependency(universe, pool, spec)?);
    }
    let goal = parse_dependency(universe, pool, goal_part.trim())?;
    Ok((sigma, goal))
}

/// Parses a universe spec (`[untyped] NAME NAME …` — the arguments of a
/// `@universe` directive, and the wire format `typedtd-proto` `SUBMIT`
/// frames carry).
pub fn parse_universe_spec(rest: &str) -> Result<Arc<Universe>, String> {
    let mut names: Vec<&str> = rest.split_whitespace().collect();
    let untyped = names.first() == Some(&"untyped");
    if untyped {
        names.remove(0);
    }
    if names.is_empty() {
        return Err("@universe needs at least one attribute name".into());
    }
    Ok(if untyped {
        Universe::untyped(names)
    } else {
        Universe::typed(names)
    })
}

/// Parses `text` and submits every well-formed query through `client`,
/// one job per normalized goal part. Malformed lines are collected in
/// [`Batch::errors`] instead of aborting; a broken `@universe` directive
/// additionally invalidates the universe until the next good directive
/// (queries in between report "query before any @universe directive").
pub fn submit_batch(client: &ImplicationClient, text: &str) -> Batch {
    let mut universe: Option<Arc<Universe>> = None;
    let mut batch = Batch::default();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('@') {
            let Some(args) = rest
                .strip_prefix("universe")
                .filter(|a| a.is_empty() || a.starts_with(char::is_whitespace))
            else {
                let directive = rest.split_whitespace().next().unwrap_or("");
                batch.errors.push(BatchError {
                    line: line_no,
                    message: format!("unknown directive @{directive}"),
                });
                continue;
            };
            match parse_universe_spec(args) {
                Ok(u) => universe = Some(u),
                Err(message) => {
                    universe = None;
                    batch.errors.push(BatchError {
                        line: line_no,
                        message,
                    });
                }
            }
            continue;
        }
        let Some(u) = universe.clone() else {
            batch.errors.push(BatchError {
                line: line_no,
                message: "query before any @universe directive".to_string(),
            });
            continue;
        };
        let mut pool = ValuePool::new(u.clone());
        let (sigma, goal) = match parse_query_line(&u, &mut pool, line) {
            Ok(parsed) => parsed,
            Err(message) => {
                batch.errors.push(BatchError {
                    line: line_no,
                    message,
                });
                continue;
            }
        };
        let normalized = (|| -> Result<(Vec<TdOrEgd>, Vec<TdOrEgd>), String> {
            let mut sigma_normal = Vec::new();
            for d in &sigma {
                sigma_normal.extend(d.try_normalize(&u, &mut pool)?);
            }
            Ok((sigma_normal, goal.try_normalize(&u, &mut pool)?))
        })();
        let (sigma_normal, goal_parts) = match normalized {
            Ok(parts) => parts,
            Err(message) => {
                batch.errors.push(BatchError {
                    line: line_no,
                    message,
                });
                continue;
            }
        };
        let class = goal.class();
        let jobs = goal_parts
            .into_iter()
            .map(|part| {
                client.submit(
                    QuerySpec::new(sigma_normal.clone(), part, pool.clone()).goal_class(class),
                )
            })
            .collect();
        batch.queries.push(BatchQuery {
            line: line_no,
            text: line.to_string(),
            jobs,
        });
    }
    batch
}
