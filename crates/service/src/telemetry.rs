//! The zero-dependency telemetry core: fixed-size log-bucketed
//! histograms with a lock-free record path, mergeable snapshots, and a
//! Prometheus-style text exposition.
//!
//! The paper this repository reproduces makes implication undecidable,
//! so every answer the service gives is fuel-bounded — which makes
//! *distributions* (where fuel and wall-clock actually go), not flat
//! end-of-run counters, the operationally honest observables. This
//! module keeps the measurement discipline of the hot path it watches:
//!
//! * **No heap growth.** A [`Histogram`] is exactly 66 atomics
//!   (64 power-of-two buckets + count + sum); recording never
//!   allocates.
//! * **Lock-free recording.** [`Histogram::record`] is three `Relaxed`
//!   `fetch_add`s; concurrent recorders never contend on a lock and
//!   never lose an increment.
//! * **Mergeable snapshots.** [`HistogramSnapshot::merge`] is
//!   element-wise addition — associative and commutative, so per-shard
//!   or per-process snapshots aggregate in any order.
//!
//! A snapshot taken *while* recorders are running is each-counter
//! atomic but not cross-counter atomic (`count` may momentarily
//! disagree with the bucket sum by in-flight increments); once
//! recorders quiesce, snapshots are exact — the property tests below
//! pin both halves of that contract.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets. Bucket `i` (for `i < 63`) counts values
/// `v` with `bucket_index(v) == i`, i.e. values up to `2^i - 1`; the
/// last bucket absorbs everything larger.
pub const HIST_BUCKETS: usize = 64;

/// The bucket a value lands in: 0 for 0, otherwise one plus the
/// position of the highest set bit, clamped to the last bucket. This
/// makes bucket boundaries exact powers of two: bucket 0 holds `{0}`,
/// bucket `i` holds `[2^(i-1), 2^i)` for `1 <= i < 63`, and bucket 63
/// holds `[2^62, u64::MAX]`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-size, log2-bucketed concurrent histogram. See the module
/// docs for the concurrency contract.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; never allocates.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters (see the module docs for
    /// what "point-in-time" means under concurrent recording).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s counters; merge snapshots from
/// many shards/processes with [`HistogramSnapshot::merge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket boundaries per
    /// [`bucket_index`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Element-wise accumulation of `other` into `self` (associative
    /// and commutative, so shard snapshots fold in any order).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The smallest bucket upper bound at or above quantile `q` (0..=1)
    /// of the recorded distribution, or `None` while empty. Quantiles
    /// from log buckets are bounds, not exact order statistics.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }
}

/// Which way a submission left the service — the latency histograms are
/// split by this, because a cache hit and a fuel-cap expiry have
/// distributions that mean entirely different things.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Answered without fresh computation (cache hit, goal-in-Σ
    /// fast path, coalesced onto a finished leader, warm replay).
    Hit,
    /// Computed to a verdict (including honest `Unknown` within fuel).
    Miss,
    /// Fuel cap or global budget expired the job.
    Expired,
    /// Cancelled (explicitly, or its connection dropped).
    Cancelled,
}

impl OutcomeKind {
    const ALL: [OutcomeKind; 4] = [
        OutcomeKind::Hit,
        OutcomeKind::Miss,
        OutcomeKind::Expired,
        OutcomeKind::Cancelled,
    ];

    fn idx(self) -> usize {
        match self {
            OutcomeKind::Hit => 0,
            OutcomeKind::Miss => 1,
            OutcomeKind::Expired => 2,
            OutcomeKind::Cancelled => 3,
        }
    }

    /// Stable lowercase label (metric/exposition name fragment).
    pub fn as_str(self) -> &'static str {
        match self {
            OutcomeKind::Hit => "hit",
            OutcomeKind::Miss => "miss",
            OutcomeKind::Expired => "expired",
            OutcomeKind::Cancelled => "cancelled",
        }
    }
}

/// The service's histogram families: submit→resolve latency split by
/// [`OutcomeKind`], queue-wait vs run time for scheduled jobs, and fuel
/// per job. Disabled (`ServiceConfig::metrics = false`) it records
/// nothing — one branch per call is the entire overhead.
pub struct Telemetry {
    enabled: bool,
    latency: [Histogram; 4],
    queue_wait: Histogram,
    run_time: Histogram,
    fuel_per_job: Histogram,
    join_build_rows: Histogram,
    join_probe_hits: Histogram,
    parallel_shards: Histogram,
}

impl Telemetry {
    /// A telemetry core; `enabled = false` turns every record call into
    /// a single branch.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            latency: std::array::from_fn(|_| Histogram::new()),
            queue_wait: Histogram::new(),
            run_time: Histogram::new(),
            fuel_per_job: Histogram::new(),
            join_build_rows: Histogram::new(),
            join_probe_hits: Histogram::new(),
            parallel_shards: Histogram::new(),
        }
    }

    /// Whether recording (and its wall-clock sampling upstream) is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Submit→resolve latency for one landed submission.
    pub fn record_latency(&self, kind: OutcomeKind, nanos: u64) {
        if self.enabled {
            self.latency[kind.idx()].record(nanos);
        }
    }

    /// Time a scheduled job spent waiting (not being stepped).
    pub fn record_queue_wait(&self, nanos: u64) {
        if self.enabled {
            self.queue_wait.record(nanos);
        }
    }

    /// Time a scheduled job spent actually being stepped.
    pub fn record_run_time(&self, nanos: u64) {
        if self.enabled {
            self.run_time.record(nanos);
        }
    }

    /// Fuel one landed submission consumed.
    pub fn record_fuel(&self, fuel: u64) {
        if self.enabled {
            self.fuel_per_job.record(fuel);
        }
    }

    /// Join-phase profile of one landed scheduled job: hash-join build
    /// rows, probe hits, and parallel scan shards its chase spent.
    pub fn record_join(&self, build_rows: u64, probe_hits: u64, shards: u64) {
        if self.enabled {
            self.join_build_rows.record(build_rows);
            self.join_probe_hits.record(probe_hits);
            self.parallel_shards.record(shards);
        }
    }

    /// Snapshots every family at once.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            latency: std::array::from_fn(|i| self.latency[i].snapshot()),
            queue_wait: self.queue_wait.snapshot(),
            run_time: self.run_time.snapshot(),
            fuel_per_job: self.fuel_per_job.snapshot(),
            join_build_rows: self.join_build_rows.snapshot(),
            join_probe_hits: self.join_probe_hits.snapshot(),
            parallel_shards: self.parallel_shards.snapshot(),
        }
    }
}

/// Owned snapshots of every [`Telemetry`] family; mergeable like the
/// per-family snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Latency by outcome, indexed like [`OutcomeKind::ALL`] — use
    /// [`TelemetrySnapshot::latency`] for named access.
    latency: [HistogramSnapshot; 4],
    /// Queue-wait distribution (scheduled jobs only), nanoseconds.
    pub queue_wait: HistogramSnapshot,
    /// Run-time distribution (scheduled jobs only), nanoseconds.
    pub run_time: HistogramSnapshot,
    /// Fuel-per-job distribution (fuel units).
    pub fuel_per_job: HistogramSnapshot,
    /// Hash-join build-side rows per scheduled job (chase trigger scans).
    pub join_build_rows: HistogramSnapshot,
    /// Hash-join probe-side hits per scheduled job (chase trigger scans).
    pub join_probe_hits: HistogramSnapshot,
    /// Parallel scan shards per scheduled job (0 in sequential mode).
    pub parallel_shards: HistogramSnapshot,
}

impl TelemetrySnapshot {
    /// The latency histogram for one outcome kind.
    pub fn latency(&self, kind: OutcomeKind) -> &HistogramSnapshot {
        &self.latency[kind.idx()]
    }

    /// Total submissions with a recorded latency, across all outcomes.
    pub fn latency_count(&self) -> u64 {
        self.latency.iter().map(|h| h.count).sum()
    }

    /// Element-wise accumulation of `other` into `self`.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (a, b) in self.latency.iter_mut().zip(other.latency.iter()) {
            a.merge(b);
        }
        self.queue_wait.merge(&other.queue_wait);
        self.run_time.merge(&other.run_time);
        self.fuel_per_job.merge(&other.fuel_per_job);
        self.join_build_rows.merge(&other.join_build_rows);
        self.join_probe_hits.merge(&other.join_probe_hits);
        self.parallel_shards.merge(&other.parallel_shards);
    }

    /// Iterates `(outcome, histogram)` over the latency families.
    pub fn latencies(&self) -> impl Iterator<Item = (OutcomeKind, &HistogramSnapshot)> {
        OutcomeKind::ALL.iter().map(|k| (*k, &self.latency[k.idx()]))
    }

    /// The compact `key=value` rendering of every family, appended to
    /// the wire `STATS` text: `h_<family>_count`, `h_<family>_sum`,
    /// and one `h_<family>_b<i>` per *nonzero* bucket.
    pub fn stats_text(&self) -> String {
        let mut out = String::new();
        let mut fam = |name: &str, h: &HistogramSnapshot| {
            use std::fmt::Write as _;
            let _ = write!(out, " h_{name}_count={} h_{name}_sum={}", h.count, h.sum);
            for (i, b) in h.buckets.iter().enumerate() {
                if *b > 0 {
                    let _ = write!(out, " h_{name}_b{i}={b}");
                }
            }
        };
        for (kind, h) in self.latencies() {
            fam(&format!("latency_{}", kind.as_str()), h);
        }
        fam("queue_wait", &self.queue_wait);
        fam("run_time", &self.run_time);
        fam("fuel_per_job", &self.fuel_per_job);
        fam("join_build_rows", &self.join_build_rows);
        fam("join_probe_hits", &self.join_probe_hits);
        fam("parallel_shards", &self.parallel_shards);
        out
    }
}

/// A Prometheus-text-format builder: `# HELP`/`# TYPE` headers,
/// counters, gauges, and histograms with cumulative `le` buckets.
/// Metric and label names are the caller's responsibility; values are
/// written as plain integers/floats.
#[derive(Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        use std::fmt::Write as _;
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// One monotone counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        use std::fmt::Write as _;
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        use std::fmt::Write as _;
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// A counter family with one label: `name{label="v"} value` per
    /// entry.
    pub fn counter_vec(&mut self, name: &str, help: &str, label: &str, entries: &[(String, u64)]) {
        use std::fmt::Write as _;
        self.header(name, help, "counter");
        for (lv, value) in entries {
            let _ = writeln!(self.out, "{name}{{{label}=\"{lv}\"}} {value}");
        }
    }

    /// A gauge family with one label: `name{label="v"} value` per entry.
    pub fn gauge_vec(&mut self, name: &str, help: &str, label: &str, entries: &[(String, u64)]) {
        use std::fmt::Write as _;
        self.header(name, help, "gauge");
        for (lv, value) in entries {
            let _ = writeln!(self.out, "{name}{{{label}=\"{lv}\"}} {value}");
        }
    }

    /// A full histogram family: cumulative `_bucket{le="…"}` samples
    /// (empty buckets above the last populated one are elided, `+Inf`
    /// always emitted), then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, h: &HistogramSnapshot) {
        use std::fmt::Write as _;
        self.header(name, help, "histogram");
        let last = h
            .buckets
            .iter()
            .rposition(|b| *b > 0)
            .map(|i| i.min(HIST_BUCKETS - 2))
            .unwrap_or(0);
        let mut cum = 0u64;
        for i in 0..=last {
            cum += h.buckets[i];
            let _ = writeln!(
                self.out,
                "{name}_bucket{{le=\"{}\"}} {cum}",
                bucket_upper_bound(i)
            );
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(self.out, "{name}_sum {}", h.sum);
        let _ = writeln!(self.out, "{name}_count {}", h.count);
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Writes `text` to `path` atomically: a unique temp file in the same
/// directory, then `rename` over the target — readers see either the
/// old snapshot or the new one, never a torn write.
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp = {
        let mut name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| std::ffi::OsString::from("metrics"));
        name.push(format!(".tmp.{}", std::process::id()));
        match dir {
            Some(d) => d.join(name),
            None => std::path::PathBuf::from(name),
        }
    };
    std::fs::write(&tmp, text)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bucket boundaries are a monotone partition of `u64`: indexes are
    /// non-decreasing in the value, every value's bucket upper bound is
    /// at or above it, and the previous bucket's bound is below it.
    #[test]
    fn bucket_monotonicity_and_coverage() {
        let probes: Vec<u64> = (0..64)
            .flat_map(|i| {
                let p = 1u64 << i;
                [p.wrapping_sub(1), p, p.saturating_add(1)]
            })
            .chain([0, 1, 2, 3, u64::MAX])
            .collect();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut prev_idx = 0usize;
        for v in sorted {
            let i = bucket_index(v);
            assert!(i >= prev_idx, "bucket index must be monotone in the value");
            prev_idx = i;
            assert!(
                bucket_upper_bound(i) >= v,
                "value {v} above its bucket bound {}",
                bucket_upper_bound(i)
            );
            if i > 0 {
                assert!(
                    bucket_upper_bound(i - 1) < v,
                    "value {v} below bucket {i}'s lower edge"
                );
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    /// Concurrent recorders never lose an increment: after all threads
    /// join, count == records issued, bucket sum == count, and the sum
    /// equals the arithmetic total. Snapshots taken mid-flight must
    /// stay internally plausible (bucket sum never exceeds count seen
    /// later… the invariant checked is per-counter monotonicity).
    #[test]
    fn concurrent_record_is_never_lossy() {
        let hist = Histogram::new();
        let threads = 8usize;
        let per = 10_000u64;
        let snapshots = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let hist = &hist;
                scope.spawn(move || {
                    for i in 0..per {
                        hist.record(t as u64 * 31 + i % 1000);
                    }
                });
            }
            let hist = &hist;
            let snapshots = &snapshots;
            scope.spawn(move || {
                for _ in 0..50 {
                    snapshots.lock().unwrap().push(hist.snapshot());
                    std::thread::yield_now();
                }
            });
        });
        let fin = hist.snapshot();
        assert_eq!(fin.count, threads as u64 * per);
        assert_eq!(fin.buckets.iter().sum::<u64>(), fin.count);
        let expect: u64 = (0..threads as u64)
            .flat_map(|t| (0..per).map(move |i| t * 31 + i % 1000))
            .sum();
        assert_eq!(fin.sum, expect);
        // Mid-flight snapshots never exceed the final totals.
        for s in snapshots.into_inner().unwrap() {
            assert!(s.count <= fin.count);
            assert!(s.sum <= fin.sum);
            assert!(s.buckets.iter().sum::<u64>() <= fin.count);
        }
    }

    /// Merge is associative and commutative with identity `default()`.
    #[test]
    fn merge_is_associative_commutative() {
        let mk = |seed: u64, n: u64| {
            let h = Histogram::new();
            let mut x = seed;
            for _ in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                h.record(x >> (x % 40));
            }
            h.snapshot()
        };
        let (a, b, c) = (mk(1, 500), mk(2, 700), mk(3, 300));
        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut ab = a;
        ab.merge(&b);
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");
        // a ∪ b == b ∪ a
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        // identity
        let mut ai = a;
        ai.merge(&HistogramSnapshot::default());
        assert_eq!(ai, a, "default must be the merge identity");
    }

    /// Quantile bounds: ordered, and exact on a single-bucket load.
    #[test]
    fn quantile_bounds_are_ordered() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 1000, 100_000] {
            for _ in 0..10 {
                h.record(v);
            }
        }
        let s = h.snapshot();
        let q50 = s.quantile_bound(0.5).unwrap();
        let q99 = s.quantile_bound(0.99).unwrap();
        assert!(q50 <= q99);
        assert!(HistogramSnapshot::default().quantile_bound(0.5).is_none());
    }

    /// The Prometheus rendering is cumulative, ends with `+Inf`, and
    /// `_count`/`_sum` match the snapshot. The disabled core records
    /// nothing.
    #[test]
    fn exposition_renders_cumulative_buckets() {
        let t = Telemetry::new(true);
        t.record_latency(OutcomeKind::Miss, 1500);
        t.record_latency(OutcomeKind::Miss, 3);
        t.record_fuel(64);
        let snap = t.snapshot();
        let mut exp = Exposition::new();
        exp.histogram(
            "typedtd_latency_miss_nanos",
            "submit to resolve, computed misses",
            snap.latency(OutcomeKind::Miss),
        );
        let text = exp.finish();
        assert!(text.contains("# TYPE typedtd_latency_miss_nanos histogram"));
        assert!(text.contains("typedtd_latency_miss_nanos_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("typedtd_latency_miss_nanos_sum 1503"));
        assert!(text.contains("typedtd_latency_miss_nanos_count 2"));
        // Cumulative: the le bound covering 1500 must already include
        // the earlier value 3.
        let cum_line = text
            .lines()
            .filter(|l| l.starts_with("typedtd_latency_miss_nanos_bucket"))
            .nth_back(1)
            .unwrap();
        assert!(cum_line.ends_with(" 2"), "last finite bucket is cumulative: {cum_line}");

        let off = Telemetry::new(false);
        off.record_latency(OutcomeKind::Hit, 99);
        off.record_fuel(7);
        assert_eq!(off.snapshot().latency_count(), 0);
        assert_eq!(off.snapshot().fuel_per_job.count, 0);
    }

    /// `stats_text` round-trips through the wire `STATS` parser shape
    /// (`key=value` tokens) and only mentions nonzero buckets.
    #[test]
    fn stats_text_is_key_value_tokens() {
        let t = Telemetry::new(true);
        t.record_latency(OutcomeKind::Hit, 10);
        t.record_queue_wait(5);
        let text = t.snapshot().stats_text();
        for tok in text.split_whitespace() {
            let (k, v) = tok.split_once('=').expect("every token is key=value");
            assert!(!k.is_empty());
            v.parse::<u64>().expect("every value is a u64");
        }
        assert!(text.contains("h_latency_hit_count=1"));
        assert!(text.contains("h_queue_wait_count=1"));
        assert!(!text.contains("h_latency_miss_b"), "empty buckets are elided");
    }

    /// `write_atomic` replaces the file content wholesale.
    #[test]
    fn write_atomic_replaces_content() {
        let path = std::env::temp_dir().join(format!(
            "typedtd-telemetry-test-{}.prom",
            std::process::id()
        ));
        write_atomic(&path, "first\n").unwrap();
        write_atomic(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        let _ = std::fs::remove_file(&path);
    }
}
