//! `typedtd-sockd` — the streaming socket front end.
//!
//! Serves the length-prefixed `typedtd-proto` protocol (see
//! `crates/service/README.md` for the frame spec) over TCP and/or a
//! Unix-domain socket: any number of concurrent connections share one
//! [`ImplicationClient`], each connection pipelines `SUBMIT` frames and
//! receives `ANSWER` frames out of order as jobs resolve; `CANCEL`,
//! `DETACH`, and `STATS` ride client-chosen correlation ids, and a
//! dropped connection cancels its non-detached jobs.
//!
//! ```text
//! typedtd-sockd [--tcp HOST:PORT] [--unix PATH] [--drivers N]
//!               [--slice N] [--global-fuel N] [--shards N]
//!               [--cache-cap N] [--no-cache] [--verify-hits]
//!               [--mode sequential|dovetail[:RATIO]|dovetail:adaptive[:RATIO]] [--steal on|off] [--classify on|off] [--group on|off]
//!               [--quick] [--stats] [--log PATH] [--max-inflight N]
//!               [--drain-sweeps N] [--metrics PATH]
//! ```
//!
//! With neither `--tcp` nor `--unix`, listens on `127.0.0.1:0` (an
//! ephemeral port) and prints the bound address — scripts can parse the
//! `listening tcp=…` line. The process runs until a client sends a
//! `SHUTDOWN` frame; shutdown drains in-flight jobs for `--drain-sweeps`
//! whole-scheduler sweeps, cancels the stragglers, and prints a final
//! `typedtd-sockd: done …` ledger to stderr; `--stats` additionally
//! prints the full service counters.
//!
//! `--log PATH` opens (or warm-starts from) the append-only answer log:
//! definite answers persist across restarts, and a restarted server
//! serves them as warm cache hits with zero fresh chase fuel.
//! `--max-inflight N` sheds submissions beyond N in-flight jobs with
//! `ERR_BUSY` instead of queueing without bound.
//!
//! `--metrics PATH` keeps a Prometheus-style text exposition at `PATH`
//! while the server runs: counters, gauges (in-flight, cache entries,
//! per-shard queue depth), and the latency/queue-wait/run-time/fuel
//! histograms (see `crates/service/README.md` for the format). The file
//! is rewritten atomically (temp + rename) whenever the scheduler has
//! swept since the last write, and one final time after shutdown drain,
//! so a scrape never sees a torn snapshot.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use typedtd_chase::{ChaseConfig, DecideConfig, DecideMode};
use typedtd_service::proto::SockdConfig;
use typedtd_service::{
    parse_decide_mode, stats_line, write_atomic, ImplicationClient, PersistConfig, ProtoServer,
    ServiceConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage: typedtd-sockd [--tcp HOST:PORT] [--unix PATH] [--drivers N] [--slice N] \
         [--global-fuel N] [--shards N] [--cache-cap N] [--no-cache] [--verify-hits] \
         [--mode sequential|dovetail[:RATIO]|dovetail:adaptive[:RATIO]] [--steal on|off] [--classify on|off] [--group on|off] [--quick] [--stats] \
         [--log PATH] [--max-inflight N] [--drain-sweeps N] [--metrics PATH]"
    );
    std::process::exit(2);
}

/// Periodically rewrites the metrics exposition until `stop` is set.
/// Writes only when the sweep counter moved (an idle server costs no
/// disk churn beyond the poll); write errors are reported once per
/// change, never fatal — metrics must not take the service down.
fn metrics_writer(client: &ImplicationClient, path: &std::path::Path, stop: &AtomicBool) {
    let mut last_sweeps = u64::MAX; // force an initial write
    while !stop.load(Ordering::Relaxed) {
        let sweeps = client.stats().sweeps;
        if sweeps != last_sweeps {
            last_sweeps = sweeps;
            if let Err(e) = write_atomic(path, &client.metrics_text()) {
                eprintln!("typedtd-sockd: metrics write failed: {e}");
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn main() {
    let mut cfg = ServiceConfig::default();
    let mut drivers = 2usize;
    let mut tcp: Option<String> = None;
    let mut unix: Option<PathBuf> = None;
    let mut mode: Option<DecideMode> = None;
    let mut show_stats = false;
    let mut max_inflight: Option<usize> = None;
    let mut drain_sweeps = 64usize;
    let mut metrics_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => tcp = Some(args.next().unwrap_or_else(|| usage())),
            "--unix" => unix = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--drivers" => {
                drivers = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--mode" => {
                mode = Some(
                    args.next()
                        .and_then(|v| parse_decide_mode(&v))
                        .unwrap_or_else(|| usage()),
                )
            }
            "--steal" => {
                cfg.steal = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--classify" => {
                cfg.classify = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--group" => {
                cfg.group = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--slice" => {
                cfg.slice_fuel = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--global-fuel" => {
                cfg.global_fuel =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--shards" => {
                cfg.shards = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--cache-cap" => {
                cfg.cache_capacity =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--no-cache" => cfg.cache = false,
            "--verify-hits" => cfg.verify_cache_hits = true,
            "--log" => {
                cfg.persist =
                    Some(PersistConfig::at(args.next().map(PathBuf::from).unwrap_or_else(
                        || usage(),
                    )))
            }
            "--max-inflight" => {
                max_inflight =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--drain-sweeps" => {
                drain_sweeps =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--metrics" => {
                metrics_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--quick" => {
                cfg.decide = DecideConfig {
                    chase: ChaseConfig::quick(),
                    ..DecideConfig::default()
                }
            }
            "--stats" => show_stats = true,
            _ => usage(),
        }
    }
    if let Some(mode) = mode {
        cfg.decide.mode = mode;
    }
    let tcp_spec = if tcp.is_none() && unix.is_none() {
        Some("127.0.0.1:0".to_string())
    } else {
        tcp
    };
    let server = ProtoServer::bind(
        SockdConfig {
            service: cfg,
            drivers,
            max_inflight,
            drain_sweeps,
        },
        tcp_spec.as_deref(),
        unix.as_deref(),
    )
    .unwrap_or_else(|e| {
        eprintln!("typedtd-sockd: bind failed: {e}");
        std::process::exit(1);
    });
    if let Some(addr) = server.tcp_addr() {
        println!("typedtd-sockd: listening tcp={addr}");
    }
    if let Some(path) = server.unix_path() {
        println!("typedtd-sockd: listening unix={}", path.display());
    }
    let client = server.client().clone();
    let stop_metrics = Arc::new(AtomicBool::new(false));
    let writer = metrics_path.clone().map(|path| {
        let client = client.clone();
        let stop = Arc::clone(&stop_metrics);
        std::thread::spawn(move || metrics_writer(&client, &path, &stop))
    });
    server.join();
    stop_metrics.store(true, Ordering::Relaxed);
    if let Some(t) = writer {
        let _ = t.join();
    }
    if let Some(path) = &metrics_path {
        // Final snapshot after the drain, so the file agrees with the
        // ledger even for jobs that only landed during shutdown.
        if let Err(e) = write_atomic(path, &client.metrics_text()) {
            eprintln!("typedtd-sockd: metrics write failed: {e}");
        }
    }
    let s = client.stats();
    eprintln!(
        "typedtd-sockd: done submitted={} answered={} unknown={} cancelled={} expired={} \
         warm_hits={} shed={}",
        s.submitted,
        s.yes + s.no,
        s.unknown,
        s.cancelled,
        s.expired,
        s.warm_hits,
        s.shed,
    );
    if show_stats {
        eprintln!("{}", stats_line(&client));
    }
}
