//! `typedtd-serve` — stream implication answers for a query file.
//!
//! Reads newline-delimited queries (see `typedtd_service::batch` for the
//! syntax) from a file or stdin, multiplexes them through a shared
//! [`ImplicationClient`], and streams one answer line per query as soon as
//! its verdict is in (which, under the dovetailing scheduler, need not be
//! file order — lines are tagged `#<line>`).
//!
//! Malformed lines are reported to stderr with their line number and the
//! rest of the file is still answered; the exit status is nonzero only
//! when *every* query line failed to parse (so a typo in line 7 of a
//! thousand-line corpus degrades one answer, not the whole run).
//!
//! ```text
//! typedtd-serve QUERIES.tdq [--slice N] [--global-fuel N] [--workers N]
//!               [--shards N] [--cache-cap N] [--no-cache] [--verify-hits]
//!               [--mode sequential|dovetail[:RATIO]|dovetail:adaptive[:RATIO]] [--steal on|off] [--classify on|off] [--group on|off]
//!               [--drain-sweeps N] [--quick] [--stats] [--log PATH]
//!               [--metrics PATH]
//! ```
//!
//! `--metrics PATH` keeps a Prometheus-style text exposition at `PATH`
//! while the batch drains (rewritten atomically as answers land, plus a
//! final snapshot with the ledger); see `crates/service/README.md` for
//! the format.
//!
//! `--log PATH` opens (or warm-starts from) the append-only answer log:
//! definite answers from this run persist, and a later run over the
//! same log answers repeated queries from the warm cache without
//! chasing (`--stats` reports them as `warm_hits`).
//!
//! `--mode dovetail[:RATIO]` selects the per-query dovetailed decide mode
//! (`RATIO` chase rounds per search attempt, default 1): refutable
//! queries whose chase diverges are answered `no` from the finite-model
//! search instead of `unknown`. `dovetail:adaptive[:RATIO]` starts at the
//! same ratio but rebalances fuel each slice toward whichever procedure
//! progressed, favoring the search when the chase only grows rows. `--steal on|off` (default on) toggles
//! cross-shard work stealing between the `--workers` threads; the final
//! `--stats` line reports `steals`, `cancelled`, and `parked` alongside
//! the cache counters.
//!
//! # Clean shutdown at end of input
//!
//! Once the input (a file, or stdin up to EOF) is submitted, the
//! scheduler still has to drain — and divergent queries under large
//! budgets can keep a pipe-fed `typedtd-serve -` grinding long after the
//! writer hung up, with orphaned jobs burning fuel nobody will read.
//! `--drain-sweeps N` bounds the drain *deterministically*: after `N`
//! full scheduler sweeps, every still-pending job is explicitly
//! [`cancelled`](typedtd_service::JobHandle::cancel) (its verdict line
//! prints `unknown`), the scheduler settles, and the process exits 0.
//! With or without the flag, the last line on stderr is the
//! deterministic ledger
//! `typedtd-serve: done submitted=… answered=… unknown=… cancelled=…
//! expired=…` (where `submitted == answered + unknown + cancelled`), so
//! drivers piping queries in always see how the batch was accounted.

use std::io::Read;
use typedtd_chase::{Answer, ChaseConfig, DecideConfig, DecideMode};
use typedtd_service::{
    parse_decide_mode, stats_line, submit_batch, write_atomic, ImplicationClient, PersistConfig,
    ServiceConfig,
};

fn answer_str(a: Answer) -> &'static str {
    match a {
        Answer::Yes => "yes",
        Answer::No => "no",
        Answer::Unknown => "unknown",
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: typedtd-serve <QUERIES.tdq | -> [--slice N] [--global-fuel N] \
         [--workers N] [--shards N] [--cache-cap N] [--no-cache] [--verify-hits] \
         [--mode sequential|dovetail[:RATIO]|dovetail:adaptive[:RATIO]] [--steal on|off] [--classify on|off] [--group on|off] [--drain-sweeps N] \
         [--quick] [--stats] [--log PATH] [--metrics PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut input: Option<String> = None;
    let mut cfg = ServiceConfig::default();
    let mut show_stats = false;
    let mut mode: Option<DecideMode> = None;
    let mut drain_sweeps: Option<usize> = None;
    let mut metrics_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--drain-sweeps" => {
                drain_sweeps =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--mode" => {
                mode = Some(
                    args.next()
                        .and_then(|v| parse_decide_mode(&v))
                        .unwrap_or_else(|| usage()),
                )
            }
            "--steal" => {
                cfg.steal = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--classify" => {
                cfg.classify = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--group" => {
                cfg.group = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--slice" => {
                cfg.slice_fuel = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--global-fuel" => {
                cfg.global_fuel =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--workers" => {
                cfg.workers = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--shards" => {
                cfg.shards = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--cache-cap" => {
                cfg.cache_capacity =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--no-cache" => cfg.cache = false,
            "--verify-hits" => cfg.verify_cache_hits = true,
            "--log" => {
                cfg.persist = Some(PersistConfig::at(
                    args.next()
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| usage()),
                ))
            }
            "--quick" => {
                cfg.decide = DecideConfig {
                    chase: ChaseConfig::quick(),
                    ..DecideConfig::default()
                }
            }
            "--metrics" => {
                metrics_path = Some(
                    args.next()
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--stats" => show_stats = true,
            _ if input.is_none() && !arg.starts_with("--") => input = Some(arg),
            _ => usage(),
        }
    }
    if let Some(mode) = mode {
        // Applied after the loop so `--quick --mode …` composes in any
        // order (`--quick` rebuilds the decide config).
        cfg.decide.mode = mode;
    }
    let Some(path) = input else { usage() };
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("typedtd-serve: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };

    let client = ImplicationClient::new(cfg);
    let batch = submit_batch(&client, &text);
    for err in &batch.errors {
        eprintln!("typedtd-serve: line {}: {}", err.line, err.message);
    }
    if batch.queries.is_empty() && !batch.errors.is_empty() {
        eprintln!("typedtd-serve: every query line failed to parse");
        std::process::exit(1);
    }

    // Stream answers while a driver thread runs the scheduler (with
    // `--workers N` threads stepping the shards; leftovers under a global
    // fuel budget are expired to Unknown): the main thread prints each
    // query the moment its verdict is in.
    let mut reported = vec![false; batch.queries.len()];
    let report_ready = |reported: &mut Vec<bool>| {
        for (i, q) in batch.queries.iter().enumerate() {
            if reported[i] {
                continue;
            }
            if let Some(v) = q.conjoined() {
                reported[i] = true;
                println!(
                    "#{:<4} implication={:<7} finite={:<7}{}  {}",
                    q.line,
                    answer_str(v.implication),
                    answer_str(v.finite_implication),
                    if v.from_cache { "  [cached]" } else { "" },
                    q.text,
                );
            }
        }
    };
    std::thread::scope(|scope| {
        let driver = client.clone();
        let batch_ref = &batch;
        let handle = scope.spawn(move || match drain_sweeps {
            None => driver.run_to_completion(),
            Some(limit) => {
                // Bounded drain: up to `limit` full sweeps, then every
                // still-pending job is cancelled explicitly (its verdict
                // reports `unknown`), so end-of-input with divergent
                // jobs pending shuts down deterministically instead of
                // grinding out the rest of their budgets.
                let mut sweeps = 0usize;
                while driver.tick() {
                    sweeps += 1;
                    if sweeps >= limit {
                        for query in &batch_ref.queries {
                            for job in &query.jobs {
                                job.cancel();
                            }
                        }
                        break;
                    }
                }
                // Settle the cancellations (and expire any global-fuel
                // leftovers) so every verdict is in before reporting.
                driver.run_to_completion();
            }
        });
        // Rescan (which polls every unreported job, taking shard locks)
        // only when the completion counter has moved — an atomic read —
        // so a large query file doesn't contend with the driver threads.
        let mut last_completed = u64::MAX;
        while !handle.is_finished() {
            let completed = client.stats().completed;
            if completed != last_completed {
                last_completed = completed;
                report_ready(&mut reported);
                // Metrics writes piggyback on the same completion edge:
                // no extra polling, and an idle drain writes nothing.
                if let Some(path) = &metrics_path {
                    if let Err(e) = write_atomic(path, &client.metrics_text()) {
                        eprintln!("typedtd-serve: metrics write failed: {e}");
                    }
                }
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        report_ready(&mut reported);
    });
    if let Some(path) = &metrics_path {
        // Final snapshot alongside the ledger, so the exposition counts
        // the whole batch even when the loop above missed the last edge.
        if let Err(e) = write_atomic(path, &client.metrics_text()) {
            eprintln!("typedtd-serve: metrics write failed: {e}");
        }
    }

    // The deterministic shutdown ledger: always printed, always last —
    // `submitted == answered + unknown + cancelled` once the batch has
    // drained (cancelled jobs carry no yes/no/unknown verdict).
    let done = client.stats();
    eprintln!(
        "typedtd-serve: done submitted={} answered={} unknown={} cancelled={} expired={}",
        done.submitted,
        done.yes + done.no,
        done.unknown,
        done.cancelled,
        done.expired,
    );

    if show_stats {
        eprintln!(
            "{} parse_errors={}",
            stats_line(&client),
            batch.errors.len(),
        );
    }
}
