//! `typedtd-serve` — stream implication answers for a query file.
//!
//! Reads newline-delimited queries (see `typedtd_service::batch` for the
//! syntax) from a file or stdin, multiplexes them through the
//! [`ImplicationService`], and streams one answer line per query as soon as
//! its verdict is in (which, under the dovetailing scheduler, need not be
//! file order — lines are tagged `#<line>`).
//!
//! ```text
//! typedtd-serve QUERIES.tdq [--slice N] [--global-fuel N] [--workers N]
//!               [--no-cache] [--verify-hits] [--quick] [--stats]
//! ```

use std::io::Read;
use typedtd_chase::{Answer, ChaseConfig, DecideConfig};
use typedtd_service::{submit_batch, ImplicationService, ServiceConfig};

fn answer_str(a: Answer) -> &'static str {
    match a {
        Answer::Yes => "yes",
        Answer::No => "no",
        Answer::Unknown => "unknown",
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: typedtd-serve <QUERIES.tdq | -> [--slice N] [--global-fuel N] \
         [--workers N] [--no-cache] [--verify-hits] [--quick] [--stats]"
    );
    std::process::exit(2);
}

fn main() {
    let mut input: Option<String> = None;
    let mut cfg = ServiceConfig::default();
    let mut show_stats = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--slice" => {
                cfg.slice_fuel = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--global-fuel" => {
                cfg.global_fuel =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--workers" => {
                cfg.workers = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--no-cache" => cfg.cache = false,
            "--verify-hits" => cfg.verify_cache_hits = true,
            "--quick" => {
                cfg.decide = DecideConfig {
                    chase: ChaseConfig::quick(),
                    ..DecideConfig::default()
                }
            }
            "--stats" => show_stats = true,
            _ if input.is_none() && !arg.starts_with("--") => input = Some(arg),
            _ => usage(),
        }
    }
    let Some(path) = input else { usage() };
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("typedtd-serve: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };

    let mut service = ImplicationService::new(cfg);
    let batch = match submit_batch(&mut service, &text) {
        Ok(b) => b,
        Err((line, msg)) => {
            eprintln!("typedtd-serve: line {line}: {msg}");
            std::process::exit(1);
        }
    };

    // Stream answers: after every scheduler sweep, print any query whose
    // verdict just arrived.
    let mut reported = vec![false; batch.queries.len()];
    let report_ready = |service: &ImplicationService, reported: &mut Vec<bool>| {
        for (i, q) in batch.queries.iter().enumerate() {
            if reported[i] {
                continue;
            }
            if let Some(v) = q.conjoined(service) {
                reported[i] = true;
                println!(
                    "#{:<4} implication={:<7} finite={:<7}{}  {}",
                    q.line,
                    answer_str(v.implication),
                    answer_str(v.finite_implication),
                    if v.from_cache { "  [cached]" } else { "" },
                    q.text,
                );
            }
        }
    };
    report_ready(&service, &mut reported);
    while service.tick() {
        report_ready(&service, &mut reported);
    }
    service.run_to_completion(); // expire leftovers under a global budget
    report_ready(&service, &mut reported);

    if show_stats {
        let s = service.stats();
        eprintln!(
            "jobs={} completed={} yes={} no={} unknown={} cache_hits={} coalesced={} \
             misses={} expired={} fuel={} sweeps={} distinct_queries={}",
            s.submitted,
            s.completed,
            s.yes,
            s.no,
            s.unknown,
            s.cache_hits,
            s.coalesced,
            s.cache_misses,
            s.expired,
            s.fuel_spent,
            s.sweeps,
            service.cache_len(),
        );
    }
}
