//! `typedtd-serve` — stream implication answers for a query file.
//!
//! Reads newline-delimited queries (see `typedtd_service::batch` for the
//! syntax) from a file or stdin, multiplexes them through a shared
//! [`ImplicationClient`], and streams one answer line per query as soon as
//! its verdict is in (which, under the dovetailing scheduler, need not be
//! file order — lines are tagged `#<line>`).
//!
//! Malformed lines are reported to stderr with their line number and the
//! rest of the file is still answered; the exit status is nonzero only
//! when *every* query line failed to parse (so a typo in line 7 of a
//! thousand-line corpus degrades one answer, not the whole run).
//!
//! ```text
//! typedtd-serve QUERIES.tdq [--slice N] [--global-fuel N] [--workers N]
//!               [--shards N] [--cache-cap N] [--no-cache] [--verify-hits]
//!               [--mode sequential|dovetail[:RATIO]] [--steal on|off]
//!               [--quick] [--stats]
//! ```
//!
//! `--mode dovetail[:RATIO]` selects the per-query dovetailed decide mode
//! (`RATIO` chase rounds per search attempt, default 1): refutable
//! queries whose chase diverges are answered `no` from the finite-model
//! search instead of `unknown`. `--steal on|off` (default on) toggles
//! cross-shard work stealing between the `--workers` threads; the final
//! `--stats` line reports `steals`, `cancelled`, and `parked` alongside
//! the cache counters.

use std::io::Read;
use typedtd_chase::{Answer, ChaseConfig, DecideConfig, DecideMode};
use typedtd_service::{submit_batch, ImplicationClient, ServiceConfig};

fn answer_str(a: Answer) -> &'static str {
    match a {
        Answer::Yes => "yes",
        Answer::No => "no",
        Answer::Unknown => "unknown",
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: typedtd-serve <QUERIES.tdq | -> [--slice N] [--global-fuel N] \
         [--workers N] [--shards N] [--cache-cap N] [--no-cache] [--verify-hits] \
         [--mode sequential|dovetail[:RATIO]] [--steal on|off] [--quick] [--stats]"
    );
    std::process::exit(2);
}

/// `sequential` or `dovetail[:RATIO]` (chase rounds per search attempt).
fn parse_mode(text: &str) -> Option<DecideMode> {
    match text {
        "sequential" => Some(DecideMode::Sequential),
        "dovetail" => Some(DecideMode::dovetail(1)),
        _ => {
            let ratio = text.strip_prefix("dovetail:")?.parse().ok()?;
            Some(DecideMode::dovetail(ratio))
        }
    }
}

fn main() {
    let mut input: Option<String> = None;
    let mut cfg = ServiceConfig::default();
    let mut show_stats = false;
    let mut mode: Option<DecideMode> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => {
                mode = Some(
                    args.next()
                        .and_then(|v| parse_mode(&v))
                        .unwrap_or_else(|| usage()),
                )
            }
            "--steal" => {
                cfg.steal = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage(),
                }
            }
            "--slice" => {
                cfg.slice_fuel = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--global-fuel" => {
                cfg.global_fuel =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--workers" => {
                cfg.workers = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--shards" => {
                cfg.shards = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--cache-cap" => {
                cfg.cache_capacity =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--no-cache" => cfg.cache = false,
            "--verify-hits" => cfg.verify_cache_hits = true,
            "--quick" => {
                cfg.decide = DecideConfig {
                    chase: ChaseConfig::quick(),
                    ..DecideConfig::default()
                }
            }
            "--stats" => show_stats = true,
            _ if input.is_none() && !arg.starts_with("--") => input = Some(arg),
            _ => usage(),
        }
    }
    if let Some(mode) = mode {
        // Applied after the loop so `--quick --mode …` composes in any
        // order (`--quick` rebuilds the decide config).
        cfg.decide.mode = mode;
    }
    let Some(path) = input else { usage() };
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("typedtd-serve: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };

    let client = ImplicationClient::new(cfg);
    let batch = submit_batch(&client, &text);
    for err in &batch.errors {
        eprintln!("typedtd-serve: line {}: {}", err.line, err.message);
    }
    if batch.queries.is_empty() && !batch.errors.is_empty() {
        eprintln!("typedtd-serve: every query line failed to parse");
        std::process::exit(1);
    }

    // Stream answers while a driver thread runs the scheduler (with
    // `--workers N` threads stepping the shards; leftovers under a global
    // fuel budget are expired to Unknown): the main thread prints each
    // query the moment its verdict is in.
    let mut reported = vec![false; batch.queries.len()];
    let report_ready = |reported: &mut Vec<bool>| {
        for (i, q) in batch.queries.iter().enumerate() {
            if reported[i] {
                continue;
            }
            if let Some(v) = q.conjoined() {
                reported[i] = true;
                println!(
                    "#{:<4} implication={:<7} finite={:<7}{}  {}",
                    q.line,
                    answer_str(v.implication),
                    answer_str(v.finite_implication),
                    if v.from_cache { "  [cached]" } else { "" },
                    q.text,
                );
            }
        }
    };
    std::thread::scope(|scope| {
        let driver = client.clone();
        let handle = scope.spawn(move || driver.run_to_completion());
        // Rescan (which polls every unreported job, taking shard locks)
        // only when the completion counter has moved — an atomic read —
        // so a large query file doesn't contend with the driver threads.
        let mut last_completed = u64::MAX;
        while !handle.is_finished() {
            let completed = client.stats().completed;
            if completed != last_completed {
                last_completed = completed;
                report_ready(&mut reported);
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        report_ready(&mut reported);
    });

    if show_stats {
        let s = client.stats();
        eprintln!(
            "jobs={} completed={} yes={} no={} unknown={} cache_hits={} goal_in_sigma={} \
             coalesced={} misses={} hit_rate={:.2} evictions={} expired={} cancelled={} \
             retired={} fuel={} sweeps={} steals={} parked={} cached_queries={} \
             parse_errors={}",
            s.submitted,
            s.completed,
            s.yes,
            s.no,
            s.unknown,
            s.cache_hits,
            s.goal_in_sigma,
            s.coalesced,
            s.cache_misses,
            s.cache_hit_rate(),
            s.evictions,
            s.expired,
            s.cancelled,
            s.retired,
            s.fuel_spent,
            s.sweeps,
            s.steals,
            s.parked,
            client.cache_len(),
            batch.errors.len(),
        );
    }
}
