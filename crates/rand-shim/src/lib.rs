//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace member
//! provides — under the same crate name — exactly the API surface the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] over integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 (both public
//! domain algorithms). Streams are deterministic in the seed, which is all
//! the workloads and the counterexample search rely on; no cryptographic
//! claims are made.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seeding entry points, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range, mirroring the `rand 0.9` `Rng` surface.
pub trait RngExt {
    /// The next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform, R: IntoSampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let (lo, hi_inclusive) = range.into_bounds();
        T::sample_inclusive(self, lo, hi_inclusive)
    }
}

/// Types that can be sampled uniformly from an inclusive bound pair.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngExt>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Conversion of range syntax into inclusive bounds.
pub trait IntoSampleRange<T> {
    /// `(low, high)` with both ends inclusive.
    fn into_bounds(self) -> (T, T);
}

impl SampleUniform for usize {
    fn sample_inclusive<R: RngExt>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = (hi - lo) as u64 + 1;
        lo + uniform_u64(rng, span) as usize
    }
}

impl SampleUniform for u64 {
    fn sample_inclusive<R: RngExt>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            return rng.next_u64();
        }
        lo + uniform_u64(rng, span)
    }
}

impl SampleUniform for u32 {
    fn sample_inclusive<R: RngExt>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = (hi - lo) as u64 + 1;
        lo + uniform_u64(rng, span) as u32
    }
}

/// Debiased multiply-shift sampling of `[0, span)` (Lemire's method).
fn uniform_u64<R: RngExt>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Rejected to keep the distribution exactly uniform; retry.
    }
}

impl<T: Copy + Decrement> IntoSampleRange<T> for Range<T> {
    fn into_bounds(self) -> (T, T) {
        (self.start, self.end.decrement())
    }
}

impl<T: Copy> IntoSampleRange<T> for RangeInclusive<T> {
    fn into_bounds(self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

/// Helper to turn an exclusive upper bound into an inclusive one.
pub trait Decrement {
    /// `self - 1`.
    fn decrement(self) -> Self;
}

macro_rules! impl_decrement {
    ($($t:ty),*) => {$(
        impl Decrement for $t {
            fn decrement(self) -> Self {
                assert!(self > 0, "cannot sample from an empty range");
                self - 1
            }
        }
    )*};
}
impl_decrement!(usize, u64, u32);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(1..=4);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn singleton_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(rng.random_range(5..6), 5usize);
            assert_eq!(rng.random_range(5..=5), 5usize);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.random_range(0..4usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
