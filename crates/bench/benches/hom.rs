//! Homomorphism (embedding) search scaling: the primitive under
//! satisfaction, chase triggers, cores, and `T⁻¹`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use typedtd_bench::{random_relation, random_td, universe};
use typedtd_relational::{Embedder, Valuation, ValuePool};

fn bench_embedding_by_relation_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("hom/relation_size");
    for &rows in &[16usize, 64, 256] {
        let u = universe(4);
        let mut pool = ValuePool::new(u.clone());
        let rel = random_relation(&u, &mut pool, rows, 6, 42);
        let td = random_td(&u, &mut pool, 3, 3, 7);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                let emb = Embedder::new(&rel);
                emb.count_embeddings(td.hypothesis(), &Valuation::new())
            })
        });
    }
    group.finish();
}

fn bench_embedding_by_pattern_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("hom/pattern_rows");
    for &pat in &[2usize, 3, 4, 5] {
        let u = universe(4);
        let mut pool = ValuePool::new(u.clone());
        let rel = random_relation(&u, &mut pool, 64, 4, 42);
        let td = random_td(&u, &mut pool, pat, 3, 9);
        group.bench_with_input(BenchmarkId::from_parameter(pat), &pat, |b, _| {
            b.iter(|| {
                let emb = Embedder::new(&rel);
                emb.embeds(td.hypothesis(), &Valuation::new())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_embedding_by_relation_size, bench_embedding_by_pattern_rows
}
criterion_main!(benches);
