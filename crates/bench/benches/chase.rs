//! Chase engine scaling and the variant ablation
//! (standard vs oblivious vs core vs parallel trigger scan), plus the
//! semi-naive vs naive saturation comparison that motivates the
//! delta-driven engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use typedtd_bench::{
    divergent_saturation_workload, mvd_chain_instance, saturation_workload, universe,
};
use typedtd_chase::{chase_implication, saturate, ChaseConfig, ChaseVariant};
use typedtd_relational::ValuePool;

fn bench_chain_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/mvd_chain");
    for &len in &[2usize, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter_batched(
                || {
                    let u = universe(len + 1);
                    let mut pool = ValuePool::new(u.clone());
                    let (sigma, goal) = mvd_chain_instance(&u, &mut pool, len);
                    (sigma, goal, pool)
                },
                |(sigma, goal, mut pool)| {
                    chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/variant");
    let variants = [
        ("standard", ChaseVariant::Standard, false),
        ("core", ChaseVariant::Core, false),
        ("oblivious", ChaseVariant::Oblivious, false),
        ("parallel", ChaseVariant::Standard, true),
    ];
    for (name, variant, parallel) in variants {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let u = universe(4);
                    let mut pool = ValuePool::new(u.clone());
                    let (sigma, goal) = mvd_chain_instance(&u, &mut pool, 3);
                    (sigma, goal, pool)
                },
                |(sigma, goal, mut pool)| {
                    let cfg = ChaseConfig::default()
                        .with_variant(variant)
                        .with_parallel(parallel);
                    chase_implication(&sigma, &goal, &mut pool, &cfg)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Saturation (no goal, chase to fixpoint) on mvd chains over seeded random
/// initial relations — the workload where per-round full rescans hurt most.
/// `naive` disables delta-driven trigger discovery; `semi` is the default.
fn bench_seminaive_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/saturation");
    for &(width, chain, rows) in &[(5usize, 4usize, 4usize), (6, 5, 6)] {
        for (mode, semi) in [("naive", false), ("semi", true)] {
            let id = BenchmarkId::new(format!("{mode}/w{width}"), rows);
            group.bench_with_input(id, &(), |b, _| {
                b.iter_batched(
                    || saturation_workload(width, chain, rows, 1982),
                    |(init, sigma, mut pool)| {
                        saturate(
                            &init,
                            &sigma,
                            &mut pool,
                            &ChaseConfig::default().with_semi_naive(semi),
                        )
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

/// The headline semi-naive workload: budget-bounded saturation of a
/// divergent instance at *default* budgets. Growth is linear over ~hundreds
/// of rounds, so the naive engine's per-round full rescan is quadratic
/// while the delta-driven engine stays linear (≥5× is the acceptance bar;
/// measured ≥10× on this machine).
fn bench_divergent_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/saturation_default_budget");
    group.sample_size(5);
    for &inert in &[16usize, 32] {
        for (mode, semi) in [("naive", false), ("semi", true)] {
            let id = BenchmarkId::new(mode, inert);
            group.bench_with_input(id, &(), |b, _| {
                b.iter_batched(
                    || divergent_saturation_workload(inert, 1982),
                    |(init, sigma, mut pool)| {
                        saturate(
                            &init,
                            &sigma,
                            &mut pool,
                            &ChaseConfig::default().with_semi_naive(semi),
                        )
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_chain_length, bench_variants, bench_seminaive_saturation,
        bench_divergent_saturation
}
criterion_main!(benches);
