//! Chase engine scaling and the variant ablation
//! (standard vs oblivious vs core vs parallel trigger scan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use typedtd_bench::{mvd_chain_instance, universe};
use typedtd_chase::{chase_implication, ChaseConfig, ChaseVariant};
use typedtd_relational::ValuePool;

fn bench_chain_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/mvd_chain");
    for &len in &[2usize, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter_batched(
                || {
                    let u = universe(len + 1);
                    let mut pool = ValuePool::new(u.clone());
                    let (sigma, goal) = mvd_chain_instance(&u, &mut pool, len);
                    (sigma, goal, pool)
                },
                |(sigma, goal, mut pool)| {
                    chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/variant");
    let variants = [
        ("standard", ChaseVariant::Standard, false),
        ("core", ChaseVariant::Core, false),
        ("oblivious", ChaseVariant::Oblivious, false),
        ("parallel", ChaseVariant::Standard, true),
    ];
    for (name, variant, parallel) in variants {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let u = universe(4);
                    let mut pool = ValuePool::new(u.clone());
                    let (sigma, goal) = mvd_chain_instance(&u, &mut pool, 3);
                    (sigma, goal, pool)
                },
                |(sigma, goal, mut pool)| {
                    let cfg = ChaseConfig::default()
                        .with_variant(variant)
                        .with_parallel(parallel);
                    chase_implication(&sigma, &goal, &mut pool, &cfg)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_chain_length, bench_variants
}
criterion_main!(benches);
