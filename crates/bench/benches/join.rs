//! Trigger-discovery head-to-head: a reference backtracking matcher over
//! materialized `Vec<Tuple>` rows (the shape the engine used before the
//! columnar rework) against the hash-join [`Embedder`] (inverted-index
//! postings probed in plan order). Same semantics — both count every
//! embedding of a td hypothesis — so the gap is pure matching strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use typedtd_bench::{random_relation, random_td, universe};
use typedtd_relational::{Embedder, FxHashMap, Tuple, Valuation, Value, ValuePool};

/// The pre-columnar reference: scan every relation row for each hypothesis
/// row, binding pattern values to row values, backtracking on clash.
fn backtrack_count(
    rows: &[Tuple],
    hyp: &[Tuple],
    depth: usize,
    map: &mut FxHashMap<Value, Value>,
) -> u64 {
    if depth == hyp.len() {
        return 1;
    }
    let pat = hyp[depth].values();
    let mut n = 0;
    for row in rows {
        let mut added: Vec<Value> = Vec::new();
        let mut ok = true;
        for (p, v) in pat.iter().zip(row.values()) {
            match map.get(p) {
                Some(img) if img == v => {}
                Some(_) => {
                    ok = false;
                    break;
                }
                None => {
                    map.insert(*p, *v);
                    added.push(*p);
                }
            }
        }
        if ok {
            n += backtrack_count(rows, hyp, depth + 1, map);
        }
        for p in added {
            map.remove(&p);
        }
    }
    n
}

fn bench_backtrack_vs_hashjoin(c: &mut Criterion) {
    let mut group = c.benchmark_group("join/backtrack_vs_hashjoin");
    for &rows in &[32usize, 128, 512] {
        let u = universe(4);
        let mut pool = ValuePool::new(u.clone());
        let rel = random_relation(&u, &mut pool, rows, 8, 42);
        let td = random_td(&u, &mut pool, 3, 3, 7);
        let tuples: Vec<Tuple> = rel.tuples().to_vec();

        // Same answer from both strategies, or the comparison is void.
        let want = backtrack_count(&tuples, td.hypothesis(), 0, &mut FxHashMap::default());
        assert_eq!(
            Embedder::new(&rel).count_embeddings(td.hypothesis(), &Valuation::new()) as u64,
            want,
            "strategies disagree on rows={rows}"
        );

        group.bench_with_input(BenchmarkId::new("backtrack", rows), &rows, |b, _| {
            b.iter(|| {
                backtrack_count(&tuples, td.hypothesis(), 0, &mut FxHashMap::default())
            })
        });
        group.bench_with_input(BenchmarkId::new("hashjoin", rows), &rows, |b, _| {
            b.iter(|| {
                let emb = Embedder::new(&rel);
                emb.count_embeddings(td.hypothesis(), &Valuation::new())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_backtrack_vs_hashjoin
}
criterion_main!(benches);
