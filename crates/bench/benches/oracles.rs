//! Decidable-fragment implication: the dedicated oracles (Armstrong
//! closure, dependency basis) against the general-purpose chase on the same
//! instances. The oracles should win by orders of magnitude — the paper's
//! undecidability results explain why nothing similar can exist for tds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use typedtd_bench::{fd_chain, mvd_chain, mvd_chain_instance, universe};
use typedtd_chase::{chase_implication, ChaseConfig};
use typedtd_dependencies::{fd_implies, mvd_implies, Fd, Mvd};
use typedtd_relational::{AttrId, ValuePool};

fn bench_fd_oracle_vs_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracles/fd");
    for &len in &[3usize, 6, 10] {
        let u = universe(len + 1);
        let fds = fd_chain(&u, len);
        let goal = Fd::new(
            [AttrId(0)].into_iter().collect(),
            [AttrId(len as u16)].into_iter().collect(),
        );
        group.bench_with_input(BenchmarkId::new("closure", len), &len, |b, _| {
            b.iter(|| fd_implies(&fds, &goal))
        });
        group.bench_with_input(BenchmarkId::new("chase", len), &len, |b, _| {
            b.iter_batched(
                || {
                    let mut pool = ValuePool::new(u.clone());
                    let sigma: Vec<_> = fds
                        .iter()
                        .flat_map(|f| f.to_egds(&u, &mut pool))
                        .map(typedtd_dependencies::TdOrEgd::Egd)
                        .collect();
                    let goal_egd = goal.to_egds(&u, &mut pool).remove(0);
                    (sigma, typedtd_dependencies::TdOrEgd::Egd(goal_egd), pool)
                },
                |(sigma, goal, mut pool)| {
                    chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_mvd_oracle_vs_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracles/mvd");
    for &len in &[2usize, 3, 4] {
        let u = universe(len + 1);
        let mvds = mvd_chain(&u, len);
        let goal = Mvd::new(
            u.clone(),
            [AttrId(0)].into_iter().collect(),
            [AttrId(len as u16)].into_iter().collect(),
        );
        group.bench_with_input(BenchmarkId::new("basis", len), &len, |b, _| {
            b.iter(|| mvd_implies(&u, &mvds, &goal))
        });
        group.bench_with_input(BenchmarkId::new("chase", len), &len, |b, _| {
            b.iter_batched(
                || {
                    let mut pool = ValuePool::new(u.clone());
                    let (sigma, goal) = mvd_chain_instance(&u, &mut pool, len);
                    (sigma, goal, pool)
                },
                |(sigma, goal, mut pool)| {
                    chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fd_oracle_vs_chase, bench_mvd_oracle_vs_chase
}
criterion_main!(benches);
