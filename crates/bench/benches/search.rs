//! Finite counterexample search: cost of the "other" semidecision
//! procedure, including the Theorem 1/3 semigroup instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use typedtd_bench::universe;
use typedtd_chase::{random_counterexample, SearchConfig};
use typedtd_dependencies::{Mvd, TdOrEgd};
use typedtd_relational::{AttrId, Universe, ValuePool};
use typedtd_semigroup::{frontier_instance, Ei};

fn bench_mvd_refutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("search/mvd_refutation");
    for &width in &[3usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            b.iter_batched(
                || {
                    let u = universe(width);
                    let mut pool = ValuePool::new(u.clone());
                    // Σ = {A1 ↠ A2}; goal: A2 ↠ A1 — refutable.
                    let sigma = vec![TdOrEgd::Td(
                        Mvd::new(
                            u.clone(),
                            [AttrId(0)].into_iter().collect(),
                            [AttrId(1)].into_iter().collect(),
                        )
                        .to_pjd()
                        .to_td(&u, &mut pool),
                    )];
                    let goal = TdOrEgd::Td(
                        Mvd::new(
                            u.clone(),
                            [AttrId(1)].into_iter().collect(),
                            [AttrId(0)].into_iter().collect(),
                        )
                        .to_pjd()
                        .to_td(&u, &mut pool),
                    );
                    (u, pool, sigma, goal)
                },
                |(u, mut pool, sigma, goal)| {
                    let cfg = SearchConfig {
                        max_domain: 3,
                        attempts: 64,
                        ..Default::default()
                    };
                    random_counterexample(&sigma, &goal, &u, &mut pool, &cfg)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_semigroup_refutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("search/semigroup");
    group.sample_size(10);
    group.bench_function("commutativity", |b| {
        b.iter_batched(
            || {
                let u = Universe::untyped_abc();
                let mut pool = ValuePool::new(u.clone());
                let ei = Ei::parse("=> x*y = y*x").unwrap();
                let inst = frontier_instance(&ei, &mut pool, &u);
                (u, pool, inst)
            },
            |(u, mut pool, inst)| {
                let cfg = SearchConfig {
                    max_domain: 2,
                    attempts: 200,
                    repair_steps: 256,
                    max_rows: 64,
                    ..Default::default()
                };
                random_counterexample(&inst.sigma, &inst.goal, &u, &mut pool, &cfg)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mvd_refutation, bench_semigroup_refutation
}
criterion_main!(benches);
