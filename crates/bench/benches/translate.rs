//! Cost and blowup of the paper's translations: `T` (Section 3), the hat
//! translation (Section 6, universe growth `|Û| = |U|·(m(m−1)/2 + 1)`),
//! and the full Theorem 6 pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use typedtd_bench::{random_td, universe};
use typedtd_core::{theorem6_instance, HatContext, Translator};
use typedtd_relational::{Relation, Tuple, Universe, ValuePool};

fn bench_t_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("translate/T_relation");
    for &rows in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter_batched(
                || {
                    let u = Universe::untyped_abc();
                    let mut pool = ValuePool::new(u.clone());
                    let rel = Relation::from_rows(
                        u.clone(),
                        (0..rows).map(|i| {
                            Tuple::new(vec![
                                pool.untyped(&format!("a{}", i % 7)),
                                pool.untyped(&format!("b{}", i % 5)),
                                pool.untyped(&format!("c{}", i % 3)),
                            ])
                        }),
                    );
                    (u, pool, rel)
                },
                |(u, pool, rel)| {
                    let mut tr = Translator::new(u);
                    tr.t_relation(&pool, &rel).len()
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_hat_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("translate/hat_td");
    // Universe growth is quadratic in m: print the series alongside time.
    for &m in &[2usize, 3, 4, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter_batched(
                || {
                    let u = universe(3);
                    let mut pool = ValuePool::new(u.clone());
                    let td = random_td(&u, &mut pool, m, 3, m as u64);
                    (u, td)
                },
                |(u, td)| {
                    let mut ctx = HatContext::new(&u, td.arity());
                    let hat = ctx.hat_td(&td);
                    (ctx.hat_universe().width(), hat.hypothesis().len())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_theorem6_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("translate/theorem6");
    for &m in &[2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter_batched(
                || {
                    let u = universe(3);
                    let mut pool = ValuePool::new(u.clone());
                    let sigma: Vec<_> = (0..3)
                        .map(|s| random_td(&u, &mut pool, m, 3, s))
                        .collect();
                    let goal = random_td(&u, &mut pool, m, 3, 99);
                    (sigma, goal)
                },
                |(sigma, goal)| {
                    let inst = theorem6_instance(&sigma, &goal);
                    (inst.sigma_pjds.len(), inst.mvds.len())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_t_translation, bench_hat_translation, bench_theorem6_pipeline
}
criterion_main!(benches);
