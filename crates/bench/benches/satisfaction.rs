//! Satisfaction checking: tds, fds, and the two routes to pjd
//! satisfaction — the project-join mapping `m_R` versus the shallow-td view
//! (Lemma 6 says they agree; this measures which is faster).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use typedtd_bench::{exchange_td, random_relation, universe};
use typedtd_dependencies::{Fd, Pjd};
use typedtd_relational::ValuePool;

fn bench_td_satisfaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("satisfaction/td");
    for &rows in &[16usize, 64, 256] {
        let u = universe(3);
        let mut pool = ValuePool::new(u.clone());
        let rel = random_relation(&u, &mut pool, rows, 4, 13);
        let td = exchange_td(&u, &mut pool);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| td.satisfied_by(&rel))
        });
    }
    group.finish();
}

fn bench_fd_satisfaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("satisfaction/fd");
    for &rows in &[64usize, 512, 2048] {
        let u = universe(4);
        let mut pool = ValuePool::new(u.clone());
        let rel = random_relation(&u, &mut pool, rows, 8, 13);
        let fd = Fd::parse(&u, "A1 A2 -> A3").unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| fd.satisfied_by(&rel))
        });
    }
    group.finish();
}

fn bench_pjd_two_routes(c: &mut Criterion) {
    let mut group = c.benchmark_group("satisfaction/pjd_route");
    let u = universe(4);
    let mut pool = ValuePool::new(u.clone());
    let rel = random_relation(&u, &mut pool, 64, 4, 13);
    let pjd = Pjd::parse(&u, "*[A1 A2, A2 A3, A3 A4] on A1 A4").unwrap();
    let td = pjd.to_td(&u, &mut pool);
    group.bench_function("project_join", |b| b.iter(|| pjd.satisfied_by(&rel)));
    group.bench_function("shallow_td", |b| b.iter(|| td.satisfied_by(&rel)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_td_satisfaction, bench_fd_satisfaction, bench_pjd_two_routes
}
criterion_main!(benches);
