//! Workload generators shared by the Criterion benches and the
//! `experiments` binary.
//!
//! The paper has no empirical section — its "evaluation" is a sequence of
//! constructions — so the measured workloads here are the natural scaling
//! families around those constructions: random relations for satisfaction
//! and homomorphism search, fd/mvd families for the decidable chase, td
//! families for the translations, and the Section 6 blowup series.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use typedtd_dependencies::{egd_from_names, td_from_names, Fd, Mvd, Td, TdOrEgd};
use typedtd_relational::{AttrId, Relation, Tuple, Universe, Value, ValuePool};

/// A typed universe `A1 … A{width}`.
pub fn universe(width: usize) -> Arc<Universe> {
    Universe::typed((1..=width).map(|i| format!("A{i}")).collect())
}

/// A random relation with `rows` rows over a per-column domain of `k`
/// values (deterministic in `seed`).
pub fn random_relation(
    u: &Arc<Universe>,
    pool: &mut ValuePool,
    rows: usize,
    k: usize,
    seed: u64,
) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let domain: Vec<Vec<Value>> = u
        .attrs()
        .map(|a| {
            (0..k)
                .map(|i| pool.typed(a, &format!("{}v{i}", u.name(a))))
                .collect()
        })
        .collect();
    let mut rel = Relation::new(u.clone());
    for _ in 0..rows {
        rel.insert(Tuple::new(
            (0..u.width())
                .map(|c| domain[c][rng.random_range(0..k)])
                .collect(),
        ));
    }
    rel
}

/// The fd chain `A1 → A2, A2 → A3, …` of the given length.
pub fn fd_chain(_u: &Arc<Universe>, len: usize) -> Vec<Fd> {
    (0..len)
        .map(|i| {
            Fd::new(
                [AttrId(i as u16)].into_iter().collect(),
                [AttrId(i as u16 + 1)].into_iter().collect(),
            )
        })
        .collect()
}

/// The mvd chain `A1 ↠ A2, A2 ↠ A3, …`.
pub fn mvd_chain(u: &Arc<Universe>, len: usize) -> Vec<Mvd> {
    (0..len)
        .map(|i| {
            Mvd::new(
                u.clone(),
                [AttrId(i as u16)].into_iter().collect(),
                [AttrId(i as u16 + 1)].into_iter().collect(),
            )
        })
        .collect()
}

/// Chase-ready form of an mvd chain plus the transitive goal
/// `A1 ↠ A{len+1}`.
pub fn mvd_chain_instance(
    u: &Arc<Universe>,
    pool: &mut ValuePool,
    len: usize,
) -> (Vec<TdOrEgd>, TdOrEgd) {
    let sigma = mvd_chain(u, len)
        .into_iter()
        .map(|m| TdOrEgd::Td(m.to_pjd().to_td(u, pool)))
        .collect();
    let goal_mvd = Mvd::new(
        u.clone(),
        [AttrId(0)].into_iter().collect(),
        [AttrId(len as u16)].into_iter().collect(),
    );
    (sigma, TdOrEgd::Td(goal_mvd.to_pjd().to_td(u, pool)))
}

/// A random td with `rows` hypothesis rows over `vars` variables per
/// column; the conclusion reuses hypothesis variables on a prefix of the
/// columns and is fresh elsewhere.
pub fn random_td(
    u: &Arc<Universe>,
    pool: &mut ValuePool,
    rows: usize,
    vars: usize,
    seed: u64,
) -> Td {
    let mut rng = StdRng::seed_from_u64(seed);
    let var_pool: Vec<Vec<Value>> = u
        .attrs()
        .map(|a| {
            (0..vars)
                .map(|i| pool.fresh(Some(a), &format!("x{i}_")))
                .collect()
        })
        .collect();
    let hyp: Vec<Tuple> = (0..rows)
        .map(|_| {
            Tuple::new(
                (0..u.width())
                    .map(|c| var_pool[c][rng.random_range(0..vars)])
                    .collect(),
            )
        })
        .collect();
    let w = Tuple::new(
        (0..u.width())
            .map(|c| {
                if c < u.width() / 2 {
                    hyp[rng.random_range(0..rows)].get(AttrId(c as u16))
                } else {
                    pool.fresh(Some(AttrId(c as u16)), "w_")
                }
            })
            .collect(),
    );
    Td::new(u.clone(), w, hyp)
}

/// A saturation workload: a seeded random initial relation plus the mvd
/// chain `A1 ↠ A2, …` as tds, ready for [`typedtd_chase::saturate`].
///
/// This is the configuration where naive per-round full rescans are most
/// expensive: the chase keeps adding exchange rows, and every round the
/// naive engine re-enumerates every hypothesis embedding over the whole
/// grown instance while the semi-naive engine only probes the delta.
pub fn saturation_workload(
    width: usize,
    chain: usize,
    rows: usize,
    seed: u64,
) -> (Relation, Vec<TdOrEgd>, ValuePool) {
    let u = universe(width);
    let mut pool = ValuePool::new(u.clone());
    let init = random_relation(&u, &mut pool, rows, 2, seed);
    let sigma = mvd_chain(&u, chain)
        .into_iter()
        .map(|m| TdOrEgd::Td(m.to_pjd().to_td(&u, &mut pool)))
        .collect();
    (init, sigma, pool)
}

/// A budget-bounded divergent saturation workload: `inert_rows` rows of
/// pairwise-distinct values over `U' = A'B'C'` plus the non-total td
/// `(x, y, z) ⇒ (y, q1, q2)` ("every B'-value starts a row").
///
/// The chase never terminates on this instance — each round extends every
/// chain by one fresh row — so saturation runs to the configured budget.
/// Growth is *linear* (one new row per live chain per round) across many
/// rounds, which is exactly where naive per-round full rescans go
/// quadratic while the semi-naive engine stays linear.
pub fn divergent_saturation_workload(
    inert_rows: usize,
    seed: u64,
) -> (Relation, Vec<TdOrEgd>, ValuePool) {
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut init = Relation::new(u.clone());
    let mut i = 0usize;
    while init.len() < inert_rows {
        // Distinct values everywhere; the seed only shuffles naming.
        let salt = rng.random_range(0..1_000_000usize);
        init.insert(Tuple::new(vec![
            pool.untyped(&format!("a{i}_{salt}")),
            pool.untyped(&format!("b{i}_{salt}")),
            pool.untyped(&format!("c{i}_{salt}")),
        ]));
        i += 1;
    }
    let successor = td_from_names(&u, &mut pool, &[&["x", "y", "z"]], &["y", "q1", "q2"]);
    (init, vec![TdOrEgd::Td(successor)], pool)
}

/// An egd-heavy saturation workload: a seeded random relation over a
/// `k`-per-column domain plus the fd chain `A1 → A2, …` normalized to egds
/// (and the closing mvd `A1 ↠ A2` so td rounds interleave with merges).
///
/// Dense value reuse (small `k`) makes the fd chain cascade: every merge
/// rewrites rows, which under the naive engine restarts a full violation
/// scan per merge — the quadratic behaviour the semi-naive engine removes.
pub fn egd_saturation_workload(
    width: usize,
    rows: usize,
    k: usize,
    seed: u64,
) -> (Relation, Vec<TdOrEgd>, ValuePool) {
    let u = universe(width);
    let mut pool = ValuePool::new(u.clone());
    let init = random_relation(&u, &mut pool, rows, k, seed);
    let mut sigma: Vec<TdOrEgd> = fd_chain(&u, width - 1)
        .into_iter()
        .flat_map(|f| f.to_egds(&u, &mut pool))
        .map(TdOrEgd::Egd)
        .collect();
    sigma.push(TdOrEgd::Td(exchange_td(&u, &mut pool)));
    (init, sigma, pool)
}

/// An egd-cascade workload whose union-find merge activity stays
/// proportional to rounds (instead of collapsing in round 0).
///
/// Over `U' = A'B'C'` each of `chains` seed rows `(aᵢ, bᵢ, cᵢ)` starts an
/// infinite chain driven by two successor tds and two fds-as-egds:
///
/// * td₁ `(x, y, z) ⇒ (y, q₁, q₂)` and td₂ `(x, y, z) ⇒ (y, z, q₃)` both
///   fire on every live row, producing two rows that share their `A'`
///   value;
/// * `A' → B'` then merges the fresh `q₁` with the old `z`, and `A' → C'`
///   merges `q₂` with `q₃` — collapsing the two successors into one row
///   (which also exercises duplicate-row compaction and the dirty-log
///   remap) that seeds the next round.
///
/// Steady state: per chain per round, two td inserts, two egd merges, one
/// compaction — linear growth, constant per-round merge activity, never
/// terminating (runs to the configured budget).
pub fn egd_cascade_workload(chains: usize, seed: u64) -> (Relation, Vec<TdOrEgd>, ValuePool) {
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut init = Relation::new(u.clone());
    let mut i = 0usize;
    while init.len() < chains {
        let salt = rng.random_range(0..1_000_000usize);
        init.insert(Tuple::new(vec![
            pool.untyped(&format!("a{i}_{salt}")),
            pool.untyped(&format!("b{i}_{salt}")),
            pool.untyped(&format!("c{i}_{salt}")),
        ]));
        i += 1;
    }
    let td1 = td_from_names(&u, &mut pool, &[&["x", "y", "z"]], &["y", "q1", "q2"]);
    let td2 = td_from_names(&u, &mut pool, &[&["x", "y", "z"]], &["y", "z", "q3"]);
    let fd_b = egd_from_names(
        &u,
        &mut pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        ("B'", "y1"),
        ("B'", "y2"),
    );
    let fd_c = egd_from_names(
        &u,
        &mut pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        ("C'", "z1"),
        ("C'", "z2"),
    );
    let sigma = vec![
        TdOrEgd::Td(td1),
        TdOrEgd::Td(td2),
        TdOrEgd::Egd(fd_b),
        TdOrEgd::Egd(fd_c),
    ];
    (init, sigma, pool)
}

/// One implication query: `(Σ, goal, pool)` ready for `decide` or a
/// service submission.
pub type Query = (Vec<TdOrEgd>, TdOrEgd, ValuePool);

/// A cache-friendly batch: `distinct` structurally different fd/mvd-chain
/// implication queries, each resubmitted `renamings` times under fresh
/// variable names and rotated Σ order — the million-tenant shape a real
/// service sees. Every query carries its own pool, as service jobs do.
pub fn service_batch_workload(distinct: usize, renamings: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(distinct * renamings);
    for d in 0..distinct {
        // Alternate decided-yes chains and refuted goals so the batch
        // exercises both chase terminations.
        let width = 3 + d % 3;
        let u = universe(width);
        for r in 0..renamings {
            let mut pool = ValuePool::new(u.clone());
            // Fresh salt per renaming: same structure, disjoint names.
            let salt = rng.random_range(0..1_000_000u32);
            for c in 0..width {
                // Pre-intern decoy values so variable handles differ even
                // for the first dependency minted from this pool.
                pool.typed(AttrId(c as u16), &format!("decoy{salt}_{c}"));
            }
            let (mut sigma, goal) = mvd_chain_instance(&u, &mut pool, width - 1);
            let goal = if d % 2 == 0 {
                goal
            } else {
                // Reverse the chain direction: not implied, finite
                // counterexample found by the terminal chase instance.
                let back = Mvd::new(
                    u.clone(),
                    [AttrId(width as u16 - 1)].into_iter().collect(),
                    [AttrId(0)].into_iter().collect(),
                );
                TdOrEgd::Td(back.to_pjd().to_td(&u, &mut pool))
            };
            let rot = r % sigma.len().max(1);
            sigma.rotate_left(rot);
            queries.push((sigma, goal, pool));
        }
    }
    queries
}

/// The Σ-group acceptance shape: `members` queries sharing one Σ (the
/// mvd chain as tds) and one goal hypothesis up to renaming, each asking
/// a *different* conclusion row. Ungrouped, the service saturates the
/// same instance once per member; Σ-group mode saturates it once and
/// answers every member from the shared pool. Conclusions are drawn
/// without replacement from the hypothesis variables, so no two members
/// are canonically equal (no cache hits) and every answer is definite
/// (the chain Σ is full and weakly acyclic, so the chase terminates).
pub fn shared_sigma_workload(width: usize, rows: usize, members: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let u = universe(width);
    let vars = rows.clamp(2, 3);
    assert!(
        members <= vars.pow(width as u32) / 2,
        "not enough distinct conclusions for {members} members"
    );
    // Shared structure, chosen once: which variable index fills each
    // hypothesis cell and each member's conclusion cell.
    let cells: Vec<Vec<usize>> = (0..rows)
        .map(|_| (0..width).map(|_| rng.random_range(0..vars)).collect())
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut concls: Vec<Vec<usize>> = Vec::with_capacity(members);
    while concls.len() < members {
        let c: Vec<usize> = (0..width).map(|_| rng.random_range(0..vars)).collect();
        if seen.insert(c.clone()) {
            concls.push(c);
        }
    }
    concls
        .into_iter()
        .enumerate()
        .map(|(m, concl)| {
            // Fresh names per member: same structure, disjoint names —
            // the canonical forms (and so the group key) still coincide.
            let mut pool = ValuePool::new(u.clone());
            let var_pool: Vec<Vec<Value>> = u
                .attrs()
                .map(|a| {
                    (0..vars)
                        .map(|i| pool.fresh(Some(a), &format!("m{m}_{}v{i}_", u.name(a))))
                        .collect()
                })
                .collect();
            let hyp: Vec<Tuple> = cells
                .iter()
                .map(|row| {
                    Tuple::new(row.iter().enumerate().map(|(c, &i)| var_pool[c][i]).collect())
                })
                .collect();
            let w = Tuple::new(concl.iter().enumerate().map(|(c, &i)| var_pool[c][i]).collect());
            let goal = TdOrEgd::Td(Td::new(u.clone(), w, hyp));
            let sigma: Vec<TdOrEgd> = mvd_chain(&u, width - 1)
                .into_iter()
                .map(|mv| TdOrEgd::Td(mv.to_pjd().to_td(&u, &mut pool)))
                .collect();
            (sigma, goal, pool)
        })
        .collect()
}

/// A divergent implication query for standing background load: a
/// successor td keeps the chase growing forever and the egd goal never
/// becomes derivable, so the job stays in flight until its budget
/// expires. `salt` varies the *universe width* (`3 + salt` attributes) —
/// width is part of the canonical query key, so each salt yields a
/// distinct key (renaming alone would coalesce them all onto one job),
/// while chase cost per round stays linear (one hypothesis row; extra
/// hypothesis rows sharing a variable would explode the embedding count
/// combinatorially).
pub fn divergent_service_query(salt: usize) -> Query {
    let width = 3 + salt;
    let names: Vec<String> = (0..width)
        .map(|i| match i {
            0 => "A'".to_string(),
            1 => "B'".to_string(),
            2 => "C'".to_string(),
            _ => format!("X{i}'"),
        })
        .collect();
    let u = Universe::untyped(names);
    let mut pool = ValuePool::new(u.clone());
    let pad = |prefix: &str, base: Vec<String>| -> Vec<String> {
        let mut row = base;
        row.extend((3..width).map(|i| format!("{prefix}{i}")));
        row
    };
    let succ_hyp = pad("p", vec!["x".into(), "y".into(), "z".into()]);
    let succ_con = pad("q", vec!["y".into(), "q1".into(), "q2".into()]);
    let hyp_refs: Vec<&str> = succ_hyp.iter().map(String::as_str).collect();
    let con_refs: Vec<&str> = succ_con.iter().map(String::as_str).collect();
    let successor = td_from_names(&u, &mut pool, &[&hyp_refs], &con_refs);
    let goal_r1 = pad("v", vec!["x".into(), "y1".into(), "z1".into()]);
    let goal_r2 = pad("w", vec!["x".into(), "y2".into(), "z2".into()]);
    let r1_refs: Vec<&str> = goal_r1.iter().map(String::as_str).collect();
    let r2_refs: Vec<&str> = goal_r2.iter().map(String::as_str).collect();
    let never = egd_from_names(
        &u,
        &mut pool,
        &[&r1_refs, &r2_refs],
        ("B'", "y1"),
        ("B'", "y2"),
    );
    (vec![TdOrEgd::Td(successor)], TdOrEgd::Egd(never), pool)
}

/// The exchange td encoding `A1 ↠ A2`.
pub fn exchange_td(u: &Arc<Universe>, pool: &mut ValuePool) -> Td {
    Mvd::new(
        u.clone(),
        [AttrId(0)].into_iter().collect(),
        [AttrId(1)].into_iter().collect(),
    )
    .to_pjd()
    .to_td(u, pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let u = universe(4);
        let mut p1 = ValuePool::new(u.clone());
        let mut p2 = ValuePool::new(u.clone());
        let r1 = random_relation(&u, &mut p1, 20, 3, 7);
        let r2 = random_relation(&u, &mut p2, 20, 3, 7);
        assert_eq!(r1.len(), r2.len());
    }

    #[test]
    fn chain_instance_is_implied() {
        let u = universe(4);
        let mut pool = ValuePool::new(u.clone());
        let (sigma, goal) = mvd_chain_instance(&u, &mut pool, 3);
        let run = typedtd_chase::chase_implication(
            &sigma,
            &goal,
            &mut pool,
            &typedtd_chase::ChaseConfig::default(),
        );
        assert_eq!(run.outcome, typedtd_chase::ChaseOutcome::Implied);
    }

    #[test]
    fn egd_cascade_merges_stay_proportional_to_rounds() {
        use typedtd_chase::{saturate, ChaseConfig, ChaseOutcome};
        let (init, sigma, mut pool) = egd_cascade_workload(4, 7);
        let cfg = ChaseConfig {
            max_rounds: 24,
            ..ChaseConfig::default()
        };
        let run = saturate(&init, &sigma, &mut pool, &cfg);
        assert_eq!(run.outcome, ChaseOutcome::Exhausted, "cascade never terminates");
        // Two merges per chain per steady-state round: merge activity must
        // scale with rounds, not collapse at the start.
        let merges = run.trace.merges();
        assert!(
            merges >= 2 * 4 * (run.rounds.saturating_sub(2)),
            "merges ({merges}) must stay proportional to rounds ({})",
            run.rounds
        );
        // Steady state adds two rows and merges twice per chain per round
        // (round 0 inserts before any merge exists), so inserts keep pace.
        assert!(run.trace.rows_added() >= merges, "tds keep pace with egds");
    }

    #[test]
    fn divergent_service_queries_have_distinct_keys() {
        let keys: Vec<_> = (0..6)
            .map(|s| {
                let (sigma, goal, _pool) = divergent_service_query(s);
                typedtd_service::query_key(&sigma, &goal)
            })
            .collect();
        let mut distinct = keys.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 6, "each salt must key distinctly");
    }

    #[test]
    fn service_batch_is_cache_friendly() {
        let queries = service_batch_workload(3, 4, 11);
        assert_eq!(queries.len(), 12);
        // Renamings of the same structure share a canonical key.
        let keys: Vec<_> = queries
            .iter()
            .map(|(s, g, _)| typedtd_service::query_key(s, g))
            .collect();
        let mut distinct = keys.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 3, "4 renamings per structure must collapse");
    }

    #[test]
    fn random_td_is_well_typed() {
        let u = universe(5);
        let mut pool = ValuePool::new(u.clone());
        let td = random_td(&u, &mut pool, 4, 3, 11);
        td.check_typed(&pool).unwrap();
        assert_eq!(td.arity(), 4);
    }
}
