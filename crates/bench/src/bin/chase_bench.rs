//! Chase throughput measurement: semi-naive vs naive, sequential vs
//! parallel, across saturation and implication workloads — plus two
//! service scenarios. In `service_batch` the three columns become
//! *sequential `decide`* vs *client (cached)* vs *client (cached +
//! workers)* over a cache-friendly query batch, with `rows` = jobs and
//! `rounds` = answers served without fresh work (cache hits + coalesced +
//! goal-in-Σ). In `service_multi_submit` the columns are *sequential
//! `decide` of the answerable queries alone* vs *single-owner-style
//! global sweeps* vs *sharded multi-threaded submitters*, with a standing
//! load of divergent background jobs: the single-owner mode (the only
//! shape the v1 `&mut self` API allowed) pays every background job a fuel
//! slice on every sweep, while sharded `wait` only steps the shard owning
//! its job — `rows` = answerable jobs, `rounds` = background jobs. In
//! `service_divergent_mix` the columns are *sequential decide mode* vs
//! *dovetail 1:1* vs *dovetail 3:1* over refutable-but-divergent queries
//! behind a decidable batch, all fuel-capped: sequential expires to
//! Unknown, dovetail refutes within the cap (`rounds` = refuted queries).
//! In `service_skewed_shards` every job is pinned to shard 0 and the
//! columns are *stealing off* vs *stealing on* vs *balanced routing*
//! (`rounds` = steals observed). In `service_socket_stream` a
//! cache-friendly text batch is decided three ways — *direct in-process
//! client submits* vs *one pipelined `typedtd-proto` socket client* vs
//! *N concurrent socket clients* over a live Unix-socket `ProtoServer` —
//! measuring the wire round-trip overhead (`rows` = queries, `rounds` =
//! wire answers served without fresh fuel); answer parity with
//! sequential `decide` is asserted for every column, and in full mode
//! the single-client wire overhead is asserted ≤ 2× direct submits.
//!
//! Prints a table by default; with `--json` additionally writes
//! `BENCH_chase.json` (an array of per-workload records with median
//! nanoseconds and the speedup of column two over column one) for the perf
//! trajectory.
//!
//! Workload construction runs *outside* the timed region — only the chase
//! itself is measured. Each mode's runs are also parity-checked against
//! the naive reference (outcome, rounds, row count — answers, for the
//! service scenarios) before reporting.
//!
//! `--smoke` shrinks every workload to seconds-scale CI sizes: the
//! parity assertions all still run (so the bench path cannot silently
//! rot), the numbers are written to `BENCH_chase_smoke.json` instead, and
//! the real perf history in `BENCH_chase.json` is left untouched.
//!
//! Usage: `cargo run --release -p typedtd-bench --bin chase_bench [--json] [--smoke]`

use std::fmt::Write as _;
use std::time::Instant;
use typedtd_bench::{
    divergent_saturation_workload, divergent_service_query, egd_cascade_workload,
    egd_saturation_workload, mvd_chain_instance, saturation_workload, service_batch_workload,
    shared_sigma_workload, universe, Query,
};
use typedtd_chase::{
    chase_implication, decide, saturate, Answer, ChaseConfig, ChaseRun, DecideConfig, DecideMode,
};
use typedtd_relational::{Relation, ValuePool};
use typedtd_dependencies::{DependencyClass, TdOrEgd};
use typedtd_service::{
    parse_query_line, parse_universe_spec, ImplicationClient, JobHandle, JobStatus, PersistConfig,
    QuerySpec, ServiceConfig,
};

struct Record {
    workload: String,
    naive_ns: u128,
    semi_ns: u128,
    parallel_ns: u128,
    rows: usize,
    rounds: usize,
}

/// Median over `samples` runs of `routine`, with `setup` excluded from the
/// timed region (iter_batched-style).
fn time<I, R>(
    samples: usize,
    mut setup: impl FnMut() -> I,
    mut routine: impl FnMut(I) -> R,
) -> (u128, R) {
    let mut times = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let input = setup();
        let t0 = Instant::now();
        last = Some(routine(input));
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    (
        times[times.len() / 2].as_nanos(),
        last.expect("samples >= 1"),
    )
}

type Workload = (Relation, Vec<TdOrEgd>, ValuePool);

/// Measures one saturation workload under naive / semi-naive / parallel
/// configs, asserting outcome + rounds + row-count parity across them.
///
/// The applied-trigger prefix in a budget-truncating round may differ
/// between modes, so parity here is deliberately not up-to-isomorphism
/// (that stronger check lives in `tests/seminaive_parity.rs`).
fn measure_saturation(
    workload: String,
    samples: usize,
    mut make: impl FnMut() -> Workload,
) -> Record {
    let run = |cfg: ChaseConfig, (init, sigma, mut pool): Workload| -> ChaseRun {
        saturate(&init, &sigma, &mut pool, &cfg)
    };
    let cfgs = [
        ChaseConfig::default().with_semi_naive(false),
        ChaseConfig::default(),
        ChaseConfig::default().with_parallel(true),
    ];
    // Samples interleave the three modes instead of timing each mode's
    // block back to back, and the in-iteration order rotates: slow drift
    // (thermal, frequency, scheduler) then lands on every mode equally,
    // and no mode is systematically measured right after the expensive
    // naive run heats the core.
    let mut times: [Vec<std::time::Duration>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut runs: [Option<ChaseRun>; 3] = [None, None, None];
    for s in 0..samples {
        for k in 0..cfgs.len() {
            let m = (s + k) % cfgs.len();
            let input = make();
            let t0 = Instant::now();
            runs[m] = Some(run(cfgs[m].clone(), input));
            times[m].push(t0.elapsed());
        }
    }
    let median = |v: &mut Vec<std::time::Duration>| {
        v.sort_unstable();
        v[v.len() / 2].as_nanos()
    };
    let [mut tn, mut ts, mut tp] = times;
    let (naive_ns, semi_ns, parallel_ns) = (median(&mut tn), median(&mut ts), median(&mut tp));
    let [run_n, run_s, run_p] = runs.map(|r| r.expect("samples >= 1"));
    for (mode, r) in [("semi", &run_s), ("parallel", &run_p)] {
        assert_eq!(run_n.outcome, r.outcome, "{mode} parity violated");
        assert_eq!(run_n.rounds, r.rounds, "{mode} parity violated");
        assert_eq!(
            run_n.final_relation.len(),
            r.final_relation.len(),
            "{mode} parity violated"
        );
    }
    Record {
        workload,
        naive_ns,
        semi_ns,
        parallel_ns,
        rows: run_s.final_relation.len(),
        rounds: run_s.rounds,
    }
}

/// As [`measure_saturation`] but chasing a goal (`chase_implication`).
fn measure_implication(len: usize, samples: usize) -> Record {
    let make = || {
        let u = universe(len + 1);
        let mut pool = ValuePool::new(u.clone());
        let (sigma, goal) = mvd_chain_instance(&u, &mut pool, len);
        (sigma, goal, pool)
    };
    let run = |cfg: ChaseConfig, (sigma, goal, mut pool): (Vec<TdOrEgd>, TdOrEgd, ValuePool)| {
        chase_implication(&sigma, &goal, &mut pool, &cfg)
    };
    let (naive_ns, run_n) = time(samples, make, |w| {
        run(ChaseConfig::default().with_semi_naive(false), w)
    });
    let (semi_ns, run_s) = time(samples, make, |w| run(ChaseConfig::default(), w));
    let (parallel_ns, run_p) = time(samples, make, |w| {
        run(ChaseConfig::default().with_parallel(true), w)
    });
    for (mode, r) in [("semi", &run_s), ("parallel", &run_p)] {
        assert_eq!(run_n.outcome, r.outcome, "{mode} parity violated");
        assert_eq!(run_n.rounds, r.rounds, "{mode} parity violated");
    }
    Record {
        workload: format!("implication/mvd_chain{len}"),
        naive_ns,
        semi_ns,
        parallel_ns,
        rows: run_s.final_relation.len(),
        rounds: run_s.rounds,
    }
}

/// Runs the batch through the service, returning answers in submission
/// order plus how many were served without fresh work.
fn run_service(queries: Vec<Query>, workers: usize) -> (Vec<Answer>, u64) {
    let client = ImplicationClient::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    });
    let jobs: Vec<JobHandle> = queries
        .into_iter()
        .map(|(sigma, goal, pool)| client.submit(QuerySpec::new(sigma, goal, pool)))
        .collect();
    client.run_to_completion();
    let answers = jobs.iter().map(answer_of).collect();
    let s = client.stats();
    (answers, s.cache_hits + s.coalesced + s.goal_in_sigma)
}

fn answer_of(job: &JobHandle) -> Answer {
    match job.poll() {
        JobStatus::Done(outcome) => outcome.implication,
        JobStatus::Pending => unreachable!("driver resolves every job"),
        JobStatus::Cancelled => unreachable!("nothing here cancels"),
        JobStatus::Retired => unreachable!("handle is alive"),
    }
}

/// Budgets for the standing divergent background jobs: huge chase budget
/// (they must stay in flight for the whole measurement), no search.
fn background_decide_cfg() -> DecideConfig {
    DecideConfig {
        chase: ChaseConfig {
            max_rounds: 1 << 20,
            max_rows: 1 << 22,
            max_steps: 1 << 26,
            ..ChaseConfig::default()
        },
        skip_search: true,
        ..DecideConfig::default()
    }
}

/// v1-style single owner: one thread submits everything, then drives
/// *global* sweeps until every answerable job is done. Every sweep hands
/// every divergent background job a fuel slice — the tax the exclusive
/// `&mut self` API design forced on every caller.
fn run_single_owner(answerable: Vec<Query>, background: Vec<Query>) -> Vec<Answer> {
    let client = ImplicationClient::new(ServiceConfig::default());
    let bg: Vec<JobHandle> = background
        .into_iter()
        .map(|(s, g, p)| {
            client.submit(QuerySpec::new(s, g, p).decide_config(background_decide_cfg()))
        })
        .collect();
    let fg: Vec<JobHandle> = answerable
        .into_iter()
        .map(|(s, g, p)| client.submit(QuerySpec::new(s, g, p)))
        .collect();
    while fg.iter().any(|h| matches!(h.poll(), JobStatus::Pending)) {
        client.tick();
    }
    let answers = fg.iter().map(answer_of).collect();
    drop(bg); // retire the still-running background jobs
    answers
}

/// Sharded multi-threaded submitters: `threads` clones of the client each
/// submit a round-robin slice of the workload, then block on their own
/// answerable handles with `wait` — which steps *only the shard owning
/// each job*, so background jobs elsewhere cost nothing, and a shard
/// stops being driven the moment its last answerable job lands.
fn run_multi_submit(answerable: Vec<Query>, background: Vec<Query>, threads: usize) -> Vec<Answer> {
    let client = ImplicationClient::new(ServiceConfig::default());
    let mut fg_chunks: Vec<Vec<(usize, Query)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, q) in answerable.into_iter().enumerate() {
        fg_chunks[i % threads].push((i, q));
    }
    let mut bg_chunks: Vec<Vec<Query>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, q) in background.into_iter().enumerate() {
        bg_chunks[i % threads].push(q);
    }
    let mut indexed: Vec<(usize, Answer)> = std::thread::scope(|scope| {
        let handles: Vec<_> = fg_chunks
            .into_iter()
            .zip(bg_chunks)
            .map(|(fg, bg)| {
                let client = client.clone();
                scope.spawn(move || {
                    let _bg: Vec<JobHandle> = bg
                        .into_iter()
                        .map(|(s, g, p)| {
                            client.submit(
                                QuerySpec::new(s, g, p).decide_config(background_decide_cfg()),
                            )
                        })
                        .collect();
                    let jobs: Vec<(usize, JobHandle)> = fg
                        .into_iter()
                        .map(|(i, (s, g, p))| (i, client.submit(QuerySpec::new(s, g, p))))
                        .collect();
                    jobs.into_iter()
                        .map(|(i, job)| (i, job.wait().implication))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, a)| a).collect()
}

/// The acceptance scenario: a cache-friendly batch decided three ways —
/// naive sequential `decide`, the service, the service with worker
/// threads. Answers must agree position-for-position.
fn measure_service_batch(distinct: usize, renamings: usize, samples: usize) -> Record {
    let make = || service_batch_workload(distinct, renamings, 1982);
    let decide_all = |queries: Vec<Query>| -> Vec<Answer> {
        queries
            .into_iter()
            .map(|(sigma, goal, mut pool)| {
                decide(&sigma, &goal, &mut pool, &DecideConfig::default()).implication
            })
            .collect()
    };
    let (naive_ns, seq_answers) = time(samples, make, decide_all);
    let (semi_ns, (svc_answers, served_free)) = time(samples, make, |q| run_service(q, 1));
    let (parallel_ns, (par_answers, _)) = time(samples, make, |q| run_service(q, 4));
    assert_eq!(seq_answers, svc_answers, "service parity violated");
    assert_eq!(seq_answers, par_answers, "worker-service parity violated");
    assert!(
        seq_answers.iter().all(|a| *a != Answer::Unknown),
        "batch must be fully decidable so the comparison is apples-to-apples"
    );
    Record {
        workload: format!("service_batch/d{distinct}xr{renamings}"),
        naive_ns,
        semi_ns,
        parallel_ns,
        rows: seq_answers.len(),
        rounds: served_free as usize,
    }
}

/// The shared-state acceptance scenario: a cache-friendly answerable
/// batch decided under a standing load of `background` divergent jobs —
/// naive sequential `decide` of the answerable queries alone (the
/// reference), v1-style single-owner global sweeps, and sharded
/// multi-threaded submitters. Answers must agree position-for-position.
fn measure_multi_submit(
    distinct: usize,
    renamings: usize,
    background: usize,
    threads: usize,
    samples: usize,
) -> Record {
    let make = || {
        let fg = service_batch_workload(distinct, renamings, 77);
        let bg: Vec<Query> = (0..background).map(divergent_service_query).collect();
        (fg, bg)
    };
    let decide_all = |queries: Vec<Query>| -> Vec<Answer> {
        queries
            .into_iter()
            .map(|(sigma, goal, mut pool)| {
                decide(&sigma, &goal, &mut pool, &DecideConfig::default()).implication
            })
            .collect()
    };
    let (naive_ns, seq_answers) = time(samples, &make, |(fg, _)| decide_all(fg));
    let (semi_ns, single_answers) = time(samples, &make, |(fg, bg)| run_single_owner(fg, bg));
    let (parallel_ns, multi_answers) =
        time(samples, &make, |(fg, bg)| run_multi_submit(fg, bg, threads));
    assert_eq!(seq_answers, single_answers, "single-owner parity violated");
    assert_eq!(seq_answers, multi_answers, "multi-submitter parity violated");
    assert!(
        seq_answers.iter().all(|a| *a != Answer::Unknown),
        "answerable batch must be fully decidable so the comparison is apples-to-apples"
    );
    Record {
        workload: format!("service_multi_submit/d{distinct}xr{renamings}+bg{background}x{threads}t"),
        naive_ns,
        semi_ns,
        parallel_ns,
        rows: seq_answers.len(),
        rounds: background,
    }
}

/// Per-job fuel cap for the divergent-mix scenario: far below the chase
/// budget (so sequential mode expires to Unknown) yet roomy enough for
/// the dovetailed search to find each 2-row refutation.
const MIX_FUEL_CAP: u64 = 512;

/// Decide budgets for refutable-but-divergent queries: an effectively
/// unbounded chase (the per-job cap is the real limit), search enabled,
/// phase scheduling per `mode`.
fn divergent_mix_cfg(mode: DecideMode) -> DecideConfig {
    DecideConfig {
        chase: ChaseConfig {
            max_rounds: 1 << 20,
            max_rows: 1 << 22,
            max_steps: 1 << 26,
            ..ChaseConfig::default()
        },
        mode,
        ..DecideConfig::default()
    }
}

/// Runs a decidable foreground batch plus capped refutable-but-divergent
/// queries under one decide mode; returns both answer vectors in
/// submission order.
fn run_divergent_mix(
    fg: Vec<Query>,
    divergent: Vec<Query>,
    mode: DecideMode,
) -> (Vec<Answer>, Vec<Answer>) {
    let client = ImplicationClient::new(ServiceConfig {
        decide: divergent_mix_cfg(mode),
        ..ServiceConfig::default()
    });
    let fg_jobs: Vec<JobHandle> = fg
        .into_iter()
        .map(|(s, g, p)| client.submit(QuerySpec::new(s, g, p)))
        .collect();
    let div_jobs: Vec<JobHandle> = divergent
        .into_iter()
        .map(|(s, g, p)| client.submit(QuerySpec::new(s, g, p).fuel_cap(MIX_FUEL_CAP)))
        .collect();
    client.run_to_completion();
    (
        fg_jobs.iter().map(answer_of).collect(),
        div_jobs.iter().map(answer_of).collect(),
    )
}

/// The dovetail acceptance scenario: refutable goals behind divergent
/// chases, all fuel-capped. Sequential mode spends every capped unit on
/// the chase and expires to Unknown; dovetail answers each query `No`
/// from the search phase within the same cap. Columns: sequential /
/// dovetail 1:1 / dovetail 3:1. Decidable foreground answers must agree
/// across all modes (parity ignoring Unknowns).
fn measure_divergent_mix(
    distinct: usize,
    renamings: usize,
    divergent: usize,
    samples: usize,
) -> Record {
    let make = || {
        let fg = service_batch_workload(distinct, renamings, 4242);
        let dv: Vec<Query> = (0..divergent).map(divergent_service_query).collect();
        (fg, dv)
    };
    let (naive_ns, (seq_fg, seq_div)) = time(samples, &make, |(fg, dv)| {
        run_divergent_mix(fg, dv, DecideMode::Sequential)
    });
    let (semi_ns, (dov_fg, dov_div)) = time(samples, &make, |(fg, dv)| {
        run_divergent_mix(fg, dv, DecideMode::dovetail(1))
    });
    let (parallel_ns, (dov3_fg, dov3_div)) = time(samples, &make, |(fg, dv)| {
        run_divergent_mix(fg, dv, DecideMode::dovetail(3))
    });
    assert_eq!(seq_fg, dov_fg, "dovetail parity violated on decidable batch");
    assert_eq!(seq_fg, dov3_fg, "dovetail 3:1 parity violated on decidable batch");
    assert!(
        seq_fg.iter().all(|a| *a != Answer::Unknown),
        "foreground batch must be fully decidable"
    );
    assert!(
        seq_div.iter().all(|a| *a == Answer::Unknown),
        "sequential must burn its cap on the divergent chase"
    );
    for (mode, answers) in [("1:1", &dov_div), ("3:1", &dov3_div)] {
        assert!(
            answers.iter().all(|a| *a == Answer::No),
            "dovetail {mode} must refute every divergent query within the cap"
        );
    }
    Record {
        workload: format!("service_divergent_mix/d{distinct}xr{renamings}+dv{divergent}"),
        naive_ns,
        semi_ns,
        parallel_ns,
        rows: seq_fg.len() + seq_div.len(),
        rounds: dov_div.len(),
    }
}

/// The heterogeneous acceptance corpus: fd/mvd/pjd goals next to
/// independence atoms and inclusion dependencies, written in the batch
/// surface syntax. The `true`-flagged lines are refutable goals behind a
/// divergent fd+ind chase (the undecidable regime): fuel-capped, they
/// expire to Unknown sequentially while any dovetail variant refutes
/// them from the finite-model search.
const MIXED_CLASS_CORPUS: &[(&str, &str, bool)] = &[
    ("A B C", "A -> B & B -> C |= A -> C", false),
    ("A B C", "A -> B |= B -> A", false),
    ("A B C", "A -> C |= A ->> C", false),
    // Not `A -> B |= *[AB, AC]`: that whole query is isomorphic (swap
    // B and C) to the mvd line above, and the canonical cache would
    // legitimately coalesce them — the pjd class would never miss.
    ("A B C", "A -> B & B -> C |= *[AB, BC]", false),
    ("A B C", "A _|_ BC |= A _|_ B", false),
    ("A B C", "AB _|_ BC |= A -> B", false),
    ("untyped A B C", "[AB] <= [BC] & [BC] <= [CA] |= [AB] <= [CA]", false),
    ("untyped A B C", "[AB] <= [BC] & B -> C |= A -> B", false),
    ("untyped A B C", "[A] <= [B] |= [B] <= [A]", true),
    ("untyped A B C", "[A] <= [B] |= B -> C", true),
];

/// One parsed-and-normalized corpus line, ready to submit: the goal's
/// surface class, its divergence flag, and one `(Σ, part, pool)` query
/// per normalized goal part.
struct MixedLine {
    class: DependencyClass,
    divergent: bool,
    parts: Vec<Query>,
}

fn mixed_class_lines() -> Vec<MixedLine> {
    MIXED_CLASS_CORPUS
        .iter()
        .map(|(uspec, line, divergent)| {
            let u = parse_universe_spec(uspec).expect("corpus universe");
            let mut pool = ValuePool::new(u.clone());
            let (sigma, goal) =
                parse_query_line(&u, &mut pool, line).unwrap_or_else(|e| panic!("{line}: {e}"));
            let mut sigma_normal = Vec::new();
            for d in &sigma {
                sigma_normal.extend(d.try_normalize(&u, &mut pool).expect("corpus sigma"));
            }
            let class = goal.class();
            let parts = goal
                .try_normalize(&u, &mut pool)
                .expect("corpus goal")
                .into_iter()
                .map(|part| (sigma_normal.clone(), part, pool.clone()))
                .collect();
            MixedLine {
                class,
                divergent: *divergent,
                parts,
            }
        })
        .collect()
}

/// Submits the mixed-class corpus twice (draining in between, so the
/// second round probes a warm cache) under one decide mode; returns the
/// per-line folded first-round answers split decidable/divergent, plus
/// the final stats.
fn run_mixed_class(
    mode: DecideMode,
) -> (Vec<Answer>, Vec<Answer>, typedtd_service::ServiceStats) {
    let client = ImplicationClient::new(ServiceConfig {
        decide: divergent_mix_cfg(mode),
        ..ServiceConfig::default()
    });
    let submit_round = |lines: Vec<MixedLine>| -> Vec<(DependencyClass, bool, Vec<JobHandle>)> {
        lines
            .into_iter()
            .map(|l| {
                let jobs = l
                    .parts
                    .into_iter()
                    .map(|(s, g, p)| {
                        let mut spec = QuerySpec::new(s, g, p).goal_class(l.class);
                        if l.divergent {
                            spec = spec.fuel_cap(MIX_FUEL_CAP);
                        }
                        client.submit(spec)
                    })
                    .collect();
                (l.class, l.divergent, jobs)
            })
            .collect()
    };
    let round1 = submit_round(mixed_class_lines());
    client.run_to_completion();
    let _round2 = submit_round(mixed_class_lines());
    client.run_to_completion();
    let fold = |jobs: &[JobHandle]| {
        jobs.iter()
            .map(answer_of)
            .fold(Answer::Yes, |acc, a| acc.and(a))
    };
    let mut decidable = Vec::new();
    let mut divergent = Vec::new();
    for (_, dv, jobs) in &round1 {
        if *dv {
            divergent.push(fold(jobs));
        } else {
            decidable.push(fold(jobs));
        }
    }
    (decidable, divergent, client.stats())
}

/// The heterogeneous-workload acceptance scenario. Asserts, per decide
/// mode (sequential / dovetail 1:1 / adaptive dovetail):
///
/// * decidable answers agree across all three modes, with no Unknowns;
/// * the fuel-capped divergent fd+ind queries expire to `Unknown`
///   sequentially but are refuted (`No`) by both dovetail variants;
/// * per-class cache accounting balances exactly on the dovetail run:
///   every class sees `submitted = 2 × parts`, `misses = parts` (round
///   one), `hits = parts` (round two), i.e. a 0.50 per-class hit rate.
fn measure_service_mixed_class(samples: usize) -> Record {
    let expected: [u64; DependencyClass::COUNT] = {
        let mut counts = [0u64; DependencyClass::COUNT];
        for l in mixed_class_lines() {
            counts[l.class.index()] += l.parts.len() as u64;
        }
        counts
    };
    let (naive_ns, (seq_dec, seq_div, _)) =
        time(samples, || (), |()| run_mixed_class(DecideMode::Sequential));
    let (semi_ns, (dov_dec, dov_div, dov_stats)) =
        time(samples, || (), |()| run_mixed_class(DecideMode::dovetail(1)));
    let (parallel_ns, (ad_dec, ad_div, _)) = time(samples, || (), |()| {
        run_mixed_class(DecideMode::adaptive_dovetail(1))
    });
    assert_eq!(seq_dec, dov_dec, "mixed-class dovetail parity violated");
    assert_eq!(seq_dec, ad_dec, "mixed-class adaptive parity violated");
    assert!(
        seq_dec.iter().all(|a| *a != Answer::Unknown),
        "decidable mixed-class lines must all resolve"
    );
    assert!(
        !seq_div.is_empty() && seq_div.iter().all(|a| *a == Answer::Unknown),
        "sequential must expire every fuel-capped divergent fd+ind query"
    );
    for (label, answers) in [("dovetail", &dov_div), ("adaptive", &ad_div)] {
        assert!(
            answers.iter().all(|a| *a == Answer::No),
            "{label} must refute every divergent fd+ind query within the cap"
        );
    }
    let mut classes_seen = 0usize;
    for c in DependencyClass::ALL {
        let i = c.index();
        if expected[i] == 0 {
            continue;
        }
        classes_seen += 1;
        assert_eq!(
            dov_stats.class_submitted[i],
            2 * expected[i],
            "class {} submissions",
            c.as_str()
        );
        assert_eq!(
            dov_stats.class_cache_misses[i],
            expected[i],
            "class {} round-one misses",
            c.as_str()
        );
        assert_eq!(
            dov_stats.class_cache_hits[i],
            expected[i],
            "class {} round-two hits",
            c.as_str()
        );
        assert!(
            (dov_stats.class_hit_rate(c) - 0.5).abs() < 1e-9,
            "class {} hit rate",
            c.as_str()
        );
    }
    assert!(
        classes_seen >= 4,
        "corpus must exercise at least fd, mvd/pjd, ind, and atom goals"
    );
    Record {
        workload: format!("service_mixed_class/lines{}", MIXED_CLASS_CORPUS.len()),
        naive_ns,
        semi_ns,
        parallel_ns,
        rows: expected.iter().sum::<u64>() as usize * 2,
        rounds: classes_seen,
    }
}

/// Runs the divergent-mix workload (dovetail 1:1) with telemetry on or
/// off; returns both answer vectors in submission order.
fn run_telemetry_mix(
    fg: Vec<Query>,
    divergent: Vec<Query>,
    metrics: bool,
) -> (Vec<Answer>, Vec<Answer>) {
    let client = ImplicationClient::new(ServiceConfig {
        decide: divergent_mix_cfg(DecideMode::dovetail(1)),
        metrics,
        ..ServiceConfig::default()
    });
    let fg_jobs: Vec<JobHandle> = fg
        .into_iter()
        .map(|(s, g, p)| client.submit(QuerySpec::new(s, g, p)))
        .collect();
    let div_jobs: Vec<JobHandle> = divergent
        .into_iter()
        .map(|(s, g, p)| client.submit(QuerySpec::new(s, g, p).fuel_cap(MIX_FUEL_CAP)))
        .collect();
    client.run_to_completion();
    if metrics {
        // The record path must actually have recorded: one latency
        // sample per submission, or the "overhead" being measured is a
        // disabled no-op.
        let t = client.telemetry_snapshot();
        assert_eq!(
            t.latency_count(),
            client.stats().submitted,
            "telemetry must record one latency sample per submission"
        );
    }
    (
        fg_jobs.iter().map(answer_of).collect(),
        div_jobs.iter().map(answer_of).collect(),
    )
}

/// Telemetry overhead: the identical divergent-mix workload with
/// `ServiceConfig::metrics` on / off / on again (columns in that
/// order). Answers must agree exactly across all three runs, and when
/// `assert_overhead` is set (the full suite; smoke samples are too
/// noisy) the faster metrics-on median must stay within 5% of the
/// metrics-off median — the histogram record path is three relaxed
/// `fetch_add`s plus two `Instant` reads per landing, and this is the
/// regression net that keeps it that way.
fn measure_telemetry_overhead(
    distinct: usize,
    renamings: usize,
    divergent: usize,
    samples: usize,
    assert_overhead: bool,
) -> Record {
    let make = || {
        let fg = service_batch_workload(distinct, renamings, 4242);
        let dv: Vec<Query> = (0..divergent).map(divergent_service_query).collect();
        (fg, dv)
    };
    let (on_ns, (on_fg, on_div)) =
        time(samples, &make, |(fg, dv)| run_telemetry_mix(fg, dv, true));
    let (off_ns, (off_fg, off_div)) =
        time(samples, &make, |(fg, dv)| run_telemetry_mix(fg, dv, false));
    let (on2_ns, (on2_fg, on2_div)) =
        time(samples, &make, |(fg, dv)| run_telemetry_mix(fg, dv, true));
    assert_eq!(on_fg, off_fg, "telemetry must not change foreground answers");
    assert_eq!(on_div, off_div, "telemetry must not change divergent answers");
    assert_eq!(on_fg, on2_fg, "metrics-on reruns must agree");
    assert_eq!(on_div, on2_div, "metrics-on reruns must agree");
    if assert_overhead {
        let best_on = on_ns.min(on2_ns);
        assert!(
            best_on <= off_ns + off_ns / 20,
            "telemetry overhead above 5%: on={on_ns}ns on2={on2_ns}ns off={off_ns}ns"
        );
    }
    Record {
        workload: format!("service_telemetry_overhead/d{distinct}xr{renamings}+dv{divergent}"),
        naive_ns: on_ns,
        semi_ns: off_ns,
        parallel_ns: on2_ns,
        rows: on_fg.len() + on_div.len(),
        rounds: divergent,
    }
}

/// Fuel cap for the skew scenario's divergent ballast jobs: enough
/// slices that the hot shard's queue stays deep for the whole run (so
/// idle workers reliably wake and steal), small enough to finish fast.
const SKEW_BALLAST_CAP: u64 = 2048;

/// Runs a decidable batch plus capped divergent ballast through a
/// 4-shard, 4-worker client; `pin` forces every job onto shard 0 (the
/// deliberately skewed assignment). Returns the decidable answers (in
/// submission order) and the steal count.
fn run_skewed(
    queries: Vec<Query>,
    ballast: Vec<Query>,
    pin: bool,
    steal: bool,
) -> (Vec<Answer>, u64) {
    let client = ImplicationClient::new(ServiceConfig {
        shards: 4,
        workers: 4,
        steal,
        cache: false,
        ..ServiceConfig::default()
    });
    let place = |spec: QuerySpec| if pin { spec.pin_shard(0) } else { spec };
    let jobs: Vec<JobHandle> = queries
        .into_iter()
        .map(|(s, g, p)| client.submit(place(QuerySpec::new(s, g, p))))
        .collect();
    let ballast_jobs: Vec<JobHandle> = ballast
        .into_iter()
        .map(|(s, g, p)| {
            client.submit(place(
                QuerySpec::new(s, g, p)
                    .decide_config(divergent_mix_cfg(DecideMode::Sequential))
                    .fuel_cap(SKEW_BALLAST_CAP),
            ))
        })
        .collect();
    client.run_to_completion();
    let answers = jobs.iter().map(answer_of).collect();
    for b in &ballast_jobs {
        assert_eq!(answer_of(b), Answer::Unknown, "ballast must expire on its cap");
    }
    (answers, client.stats().steals)
}

/// The work-stealing acceptance scenario: every job pinned to shard 0.
/// Columns: skewed with stealing off (only shard 0's home worker makes
/// progress — single-worker throughput) / skewed with stealing on (idle
/// workers steal slices from the deep queue) / the balanced hash-routed
/// assignment as the reference. Answer parity against sequential
/// `decide` is asserted for every mode; with stealing on the skewed
/// wall-clock must stay within 1.5× of balanced (asserted outside smoke
/// mode, where sizes are too small for stable ratios).
fn measure_skewed_steal(jobs: usize, ballast: usize, samples: usize, assert_ratio: bool) -> Record {
    let make = || {
        let fg = service_batch_workload(jobs, 1, 2024);
        let bal: Vec<Query> = (0..ballast).map(divergent_service_query).collect();
        (fg, bal)
    };
    let reference: Vec<Answer> = make()
        .0
        .into_iter()
        .map(|(sigma, goal, mut pool)| {
            decide(&sigma, &goal, &mut pool, &DecideConfig::default()).implication
        })
        .collect();
    let (naive_ns, (off_answers, off_steals)) =
        time(samples, &make, |(q, b)| run_skewed(q, b, true, false));
    let (semi_ns, (on_answers, on_steals)) =
        time(samples, &make, |(q, b)| run_skewed(q, b, true, true));
    let (parallel_ns, (bal_answers, _)) =
        time(samples, &make, |(q, b)| run_skewed(q, b, false, true));
    assert_eq!(reference, off_answers, "steal-off parity violated");
    assert_eq!(reference, on_answers, "steal-on parity violated");
    assert_eq!(reference, bal_answers, "balanced parity violated");
    assert_eq!(off_steals, 0, "stealing disabled must not steal");
    assert!(on_steals > 0, "skewed assignment must trigger stealing");
    if assert_ratio {
        assert!(
            semi_ns as f64 <= 1.5 * parallel_ns as f64,
            "stealing must keep the skewed assignment within 1.5x of balanced \
             (skewed+steal {semi_ns}ns vs balanced {parallel_ns}ns)"
        );
    }
    Record {
        workload: format!("service_skewed_shards/j{jobs}+b{ballast}x4w"),
        naive_ns,
        semi_ns,
        parallel_ns,
        rows: jobs + ballast,
        rounds: on_steals as usize,
    }
}

/// The textual cache-friendly batch for the socket scenario: `distinct`
/// fd/mvd-chain structures over `A B C D`, each submitted `repeats`
/// times with Σ rotated (same canonical key, so resubmissions hit the
/// cache/coalesce server-side). Returns `(universe, query)` pairs.
fn socket_corpus(distinct: usize, repeats: usize) -> Vec<(String, String)> {
    let structures: [(&[&str], &str); 6] = [
        (&["A -> B", "B -> C"], "A -> C"),
        (&["A ->> B", "B ->> C"], "A ->> C"),
        (&["A -> B", "B -> C", "C -> D"], "A -> D"),
        (&["A ->> B", "B ->> C", "C ->> D"], "A ->> D"),
        (&["A -> B", "B -> C"], "C -> A"),
        (&["A ->> B", "B ->> C"], "A -> C"),
    ];
    let mut corpus = Vec::with_capacity(distinct * repeats);
    for d in 0..distinct {
        let (deps, goal) = structures[d % structures.len()];
        for r in 0..repeats {
            let mut sigma: Vec<&str> = deps.to_vec();
            let rot = r % sigma.len();
            sigma.rotate_left(rot);
            corpus.push(("A B C D".to_string(), format!("{} |= {goal}", sigma.join(" & "))));
        }
    }
    corpus
}

/// Decides the socket corpus in-process through `submit_batch` (the
/// direct client path the wire columns are measured against). Returns
/// the per-query implication answers in corpus order.
fn run_direct_batch(corpus: &[(String, String)]) -> Vec<Answer> {
    let mut text = String::from("@universe A B C D\n");
    for (_, query) in corpus {
        text.push_str(query);
        text.push('\n');
    }
    let client = ImplicationClient::new(ServiceConfig::default());
    let batch = typedtd_service::submit_batch(&client, &text);
    assert!(batch.errors.is_empty(), "socket corpus must parse");
    client.run_to_completion();
    batch
        .queries
        .iter()
        .map(|q| q.conjoined().expect("driver resolves every query").implication)
        .collect()
}

fn wire_answer(a: typedtd_service::WireAnswer) -> Answer {
    a.implication
}

/// Streams the corpus through pre-connected socket clients (fully
/// pipelined: every client submits its slice, then collects
/// out-of-order answers) — connection setup stays outside the timed
/// region. Returns the answers in corpus order plus how many came
/// flagged `from_cache`.
fn run_socket_stream(
    connections: Vec<typedtd_service::ProtoClient>,
    corpus: &[(String, String)],
) -> (Vec<Answer>, usize) {
    let clients = connections.len();
    let results: Vec<(usize, typedtd_service::WireAnswer)> = std::thread::scope(|scope| {
        let handles: Vec<_> = connections
            .into_iter()
            .enumerate()
            .map(|(c, mut client)| {
                scope.spawn(move || {
                    let submitted: Vec<(u64, usize)> = corpus
                        .iter()
                        .enumerate()
                        .skip(c)
                        .step_by(clients)
                        .map(|(i, (u, q))| {
                            (client.submit(u, q, None).expect("submit"), i)
                        })
                        .collect();
                    submitted
                        .into_iter()
                        .map(|(corr, i)| (i, client.wait_answer(corr).expect("answer")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let mut answers = vec![Answer::Unknown; corpus.len()];
    let mut cached = 0usize;
    for (i, a) in results {
        if a.from_cache {
            cached += 1;
        }
        answers[i] = wire_answer(a);
    }
    (answers, cached)
}

/// The streaming-front-end scenario: the same cache-friendly batch
/// decided via direct in-process submits, one socket client, and
/// `clients` concurrent socket clients. Server spawn/connect setup runs
/// outside the timed region; with `assert_overhead` the single-client
/// wire round trip must stay within 2× of direct submits.
fn measure_socket_stream(
    distinct: usize,
    repeats: usize,
    clients: usize,
    samples: usize,
    assert_overhead: bool,
) -> Record {
    let corpus = socket_corpus(distinct, repeats);
    // The sequential reference (and the decidability guard).
    let reference: Vec<Answer> = {
        let u = typedtd_relational::Universe::typed(vec!["A", "B", "C", "D"]);
        corpus
            .iter()
            .map(|(_, query)| {
                let mut pool = ValuePool::new(u.clone());
                let (sigma, goal) =
                    typedtd_service::parse_query_line(&u, &mut pool, query).expect("parses");
                let sigma_normal: Vec<TdOrEgd> = sigma
                    .iter()
                    .flat_map(|d| d.normalize(&u, &mut pool))
                    .collect();
                let mut imp = Answer::Yes;
                for part in goal.normalize(&u, &mut pool) {
                    let d = decide(&sigma_normal, &part, &mut pool.clone(), &DecideConfig::default());
                    imp = imp.and(d.implication);
                }
                assert_ne!(imp, Answer::Unknown, "socket corpus must be decidable");
                imp
            })
            .collect()
    };

    let median = |times: &mut Vec<u128>| {
        times.sort_unstable();
        times[times.len() / 2]
    };
    let mut direct_times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let answers = run_direct_batch(&corpus);
        direct_times.push(t0.elapsed().as_nanos());
        assert_eq!(answers, reference, "direct-batch parity violated");
    }
    let sock_cfg = || typedtd_service::SockdConfig {
        service: ServiceConfig::default(),
        drivers: 1,
        ..Default::default()
    };
    let sock_path = |tag: &str, i: usize| {
        std::env::temp_dir().join(format!(
            "typedtd-bench-{tag}-{}-{i}.sock",
            std::process::id()
        ))
    };
    let connect = |server: &typedtd_service::ProtoServer, n: usize| {
        let path = server.unix_path().expect("unix listener");
        (0..n)
            .map(|_| typedtd_service::ProtoClient::connect_unix(path).expect("connect unix"))
            .collect::<Vec<_>>()
    };
    let mut single_times = Vec::with_capacity(samples);
    let mut cached_single = 0usize;
    for i in 0..samples {
        let path = sock_path("single", i);
        let server = typedtd_service::ProtoServer::bind(sock_cfg(), None, Some(&path))
            .expect("bind unix server");
        let conns = connect(&server, 1);
        let t0 = Instant::now();
        let (answers, cached) = run_socket_stream(conns, &corpus);
        single_times.push(t0.elapsed().as_nanos());
        assert_eq!(answers, reference, "single-client wire parity violated");
        cached_single = cached;
        drop(server);
    }
    let mut multi_times = Vec::with_capacity(samples);
    for i in 0..samples {
        let path = sock_path("multi", i);
        let server = typedtd_service::ProtoServer::bind(sock_cfg(), None, Some(&path))
            .expect("bind unix server");
        let conns = connect(&server, clients);
        let t0 = Instant::now();
        let (answers, _) = run_socket_stream(conns, &corpus);
        multi_times.push(t0.elapsed().as_nanos());
        assert_eq!(answers, reference, "multi-client wire parity violated");
        drop(server);
    }
    let naive_ns = median(&mut direct_times);
    let semi_ns = median(&mut single_times);
    let parallel_ns = median(&mut multi_times);
    if assert_overhead {
        assert!(
            semi_ns as f64 <= 2.0 * naive_ns as f64,
            "wire overhead must stay within 2x of direct submits \
             (socket {semi_ns}ns vs direct {naive_ns}ns)"
        );
    }
    Record {
        workload: format!("service_socket_stream/d{distinct}xr{repeats}+{clients}c"),
        naive_ns,
        semi_ns,
        parallel_ns,
        rows: corpus.len(),
        rounds: cached_single,
    }
}

/// The Σ-group acceptance scenario: `members` queries sharing one Σ and
/// one goal hypothesis (the `service_batch` shape after canonicalization),
/// decided three ways — naive sequential `decide` (the answer reference),
/// the service chasing once per job (group off), and the service
/// saturating once per Σ-group (group on). Answers must agree
/// position-for-position, every member must land in the one group, and in
/// full mode group mode must beat per-job chasing by ≥ 2×.
fn measure_service_shared_sigma(
    width: usize,
    rows: usize,
    members: usize,
    samples: usize,
    assert_speedup: bool,
) -> Record {
    let make = || shared_sigma_workload(width, rows, members, 1982);
    let run = |group: bool| {
        move |queries: Vec<Query>| -> (Vec<Answer>, typedtd_service::ServiceStats) {
            let client = ImplicationClient::new(ServiceConfig {
                group,
                ..ServiceConfig::default()
            });
            let jobs: Vec<JobHandle> = queries
                .into_iter()
                .map(|(s, g, p)| client.submit(QuerySpec::new(s, g, p)))
                .collect();
            client.run_to_completion();
            (jobs.iter().map(answer_of).collect(), client.stats())
        }
    };
    let decide_all = |queries: Vec<Query>| -> Vec<Answer> {
        queries
            .into_iter()
            .map(|(sigma, goal, mut pool)| {
                decide(&sigma, &goal, &mut pool, &DecideConfig::default()).implication
            })
            .collect()
    };
    let (naive_ns, seq) = time(samples, make, decide_all);
    let (semi_ns, (solo, solo_stats)) = time(samples, make, run(false));
    let (parallel_ns, (grouped, group_stats)) = time(samples, make, run(true));
    assert_eq!(seq, solo, "per-job service parity violated");
    assert_eq!(seq, grouped, "Σ-group service parity violated");
    assert!(
        seq.iter().all(|a| *a != Answer::Unknown),
        "the shared-Σ batch must be fully decidable"
    );
    assert_eq!(solo_stats.grouped, 0, "group=off must not group");
    assert_eq!(
        group_stats.grouped, members as u64,
        "every member must join the Σ-group"
    );
    assert_eq!(
        group_stats.group_chases, 1,
        "one Σ-group must saturate exactly once"
    );
    assert_eq!(group_stats.group_fallbacks, 0, "terminating group cannot expire");
    if assert_speedup {
        let ratio = semi_ns as f64 / parallel_ns as f64;
        assert!(
            ratio >= 2.0,
            "service_shared_sigma: group mode must be >= 2x per-job chasing, got {ratio:.2}x \
             (per-job {:.3} ms, grouped {:.3} ms)",
            semi_ns as f64 / 1e6,
            parallel_ns as f64 / 1e6,
        );
    }
    Record {
        workload: format!("service_shared_sigma/w{width}r{rows}x{members}"),
        naive_ns,
        semi_ns,
        parallel_ns,
        rows: seq.len(),
        rounds: group_stats.group_chases as usize,
    }
}

/// Cold-vs-warm restart over the persistent answer log. The cold column
/// decides the corpus from scratch (and appends every definite answer
/// to a fresh log); the warm column is a brand-new client replaying
/// that log, which must serve the whole corpus from warm cache entries
/// with ZERO fresh fuel — asserted, so the JSON numbers can be trusted
/// to measure replay, not recomputation. The third column repeats the
/// warm pass with witness verification on every hit.
fn measure_service_warm_restart(distinct: usize, repeats: usize, samples: usize) -> Record {
    let corpus = socket_corpus(distinct, repeats);
    let mut text = String::from("@universe A B C D\n");
    for (_, query) in &corpus {
        text.push_str(query);
        text.push('\n');
    }
    let run = |cfg: ServiceConfig| {
        let client = ImplicationClient::new(cfg);
        let t0 = Instant::now();
        let batch = typedtd_service::submit_batch(&client, &text);
        assert!(batch.errors.is_empty(), "warm-restart corpus must parse");
        client.run_to_completion();
        let answers: Vec<Answer> = batch
            .queries
            .iter()
            .map(|q| q.conjoined().expect("driver resolves every query").implication)
            .collect();
        (answers, client.stats(), t0.elapsed().as_nanos())
    };
    let median = |times: &mut Vec<u128>| {
        times.sort_unstable();
        times[times.len() / 2]
    };
    let mut cold_times = Vec::with_capacity(samples);
    let mut warm_times = Vec::with_capacity(samples);
    let mut verify_times = Vec::with_capacity(samples);
    let mut warm_hits = 0u64;
    for i in 0..samples {
        let path = std::env::temp_dir().join(format!(
            "typedtd-bench-warm-{}-{i}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let persisted = ServiceConfig {
            persist: Some(PersistConfig::at(&path)),
            ..ServiceConfig::default()
        };
        let (cold_answers, cold_stats, t) = run(persisted.clone());
        cold_times.push(t);
        assert!(cold_stats.fuel_spent > 0, "cold run must actually chase");
        let (warm_answers, warm_stats, t) = run(persisted.clone());
        warm_times.push(t);
        assert_eq!(warm_answers, cold_answers, "warm restart changed an answer");
        assert_eq!(
            warm_stats.fuel_spent, 0,
            "warm restart must serve the whole corpus without fresh fuel"
        );
        assert_eq!(
            warm_stats.warm_hits, warm_stats.submitted,
            "every warm-restart submission must hit a replayed entry"
        );
        warm_hits = warm_stats.warm_hits;
        let (verify_answers, verify_stats, t) = run(ServiceConfig {
            verify_cache_hits: true,
            ..persisted
        });
        verify_times.push(t);
        assert_eq!(verify_answers, cold_answers, "verified warm restart changed an answer");
        assert_eq!(verify_stats.fuel_spent, 0, "verified warm hits must stay fuel-free");
        assert_eq!(verify_stats.verify_rejects, 0, "replayed witnesses must verify");
        let _ = std::fs::remove_file(&path);
    }
    Record {
        workload: format!("service_warm_restart/d{distinct}xr{repeats}"),
        naive_ns: median(&mut cold_times),
        semi_ns: median(&mut warm_times),
        parallel_ns: median(&mut verify_times),
        rows: corpus.len(),
        rounds: warm_hits as usize,
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let records = if smoke {
        // CI quick mode: tiny sizes, one sample each — every parity
        // assertion still runs, so the bench-path code cannot rot.
        vec![
            measure_implication(3, 1),
            measure_saturation("saturation/w4/chain3/rows3".into(), 1, || {
                saturation_workload(4, 3, 3, 1982)
            }),
            measure_saturation("egd_saturation/w5/rows12/k2".into(), 1, || {
                egd_saturation_workload(5, 12, 2, 1982)
            }),
            // 5 samples (not 1): this row carries the parallel-vs-semi
            // floor assertion below, and a single-sample median is pure
            // scheduler noise. Still milliseconds-scale.
            measure_saturation("divergent_saturation/inert8".into(), 5, || {
                divergent_saturation_workload(8, 1982)
            }),
            measure_saturation("egd_cascade/chains2".into(), 1, || {
                egd_cascade_workload(2, 1982)
            }),
            measure_service_batch(2, 3, 1),
            measure_multi_submit(2, 3, 4, 2, 1),
            measure_divergent_mix(2, 2, 3, 1),
            measure_service_mixed_class(1),
            // Parity assertions only in smoke: a single tiny sample
            // cannot carry the ≥2× group-speedup floor.
            measure_service_shared_sigma(4, 3, 6, 1, false),
            measure_telemetry_overhead(2, 2, 3, 1, false),
            measure_skewed_steal(6, 2, 1, false),
            measure_socket_stream(3, 4, 2, 1, false),
            measure_service_warm_restart(3, 2, 1),
        ]
    } else {
        vec![
            measure_implication(4, 7),
            measure_implication(5, 5),
            measure_saturation("saturation/w5/chain4/rows4".into(), 5, || {
                saturation_workload(5, 4, 4, 1982)
            }),
            measure_saturation("saturation/w6/chain5/rows6".into(), 5, || {
                saturation_workload(6, 5, 6, 1982)
            }),
            measure_saturation("saturation/w7/chain6/rows8".into(), 3, || {
                saturation_workload(7, 6, 8, 1982)
            }),
            measure_saturation("egd_saturation/w6/rows32/k2".into(), 3, || {
                egd_saturation_workload(6, 32, 2, 1982)
            }),
            measure_saturation("egd_saturation/w8/rows48/k2".into(), 3, || {
                egd_saturation_workload(8, 48, 2, 1982)
            }),
            measure_saturation("divergent_saturation/inert16".into(), 9, || {
                divergent_saturation_workload(16, 1982)
            }),
            measure_saturation("divergent_saturation/inert32".into(), 9, || {
                divergent_saturation_workload(32, 1982)
            }),
            measure_saturation("egd_cascade/chains4".into(), 3, || {
                egd_cascade_workload(4, 1982)
            }),
            measure_saturation("egd_cascade/chains8".into(), 3, || {
                egd_cascade_workload(8, 1982)
            }),
            measure_service_batch(4, 12, 3),
            measure_service_batch(6, 25, 3),
            measure_multi_submit(4, 6, 24, 2, 3),
            measure_multi_submit(6, 10, 32, 4, 3),
            measure_divergent_mix(3, 4, 6, 3),
            measure_service_mixed_class(3),
            measure_service_shared_sigma(6, 6, 32, 3, true),
            measure_telemetry_overhead(3, 4, 6, 3, true),
            measure_skewed_steal(24, 4, 3, true),
            measure_socket_stream(5, 10, 4, 3, true),
            measure_service_warm_restart(6, 4, 3),
        ]
    };

    // The delta-sharded parallel scanner must not lose to plain semi-naive
    // on its headline workload (divergent saturation): ≥ 1.1× in the full
    // suite on multi-core hosts, relaxed to ≥ 0.9× in smoke (single noisy
    // samples) and on single-core hosts, where the thread fan-out cannot
    // pay and only the deferred-satisfaction probe saving remains.
    let multi_core = std::thread::available_parallelism().is_ok_and(|n| n.get() > 1);
    let parallel_floor = if smoke || !multi_core { 0.9 } else { 1.1 };
    for r in records
        .iter()
        .filter(|r| r.workload.starts_with("divergent_saturation/"))
    {
        let ratio = r.semi_ns as f64 / r.parallel_ns as f64;
        assert!(
            ratio >= parallel_floor,
            "{}: parallel must be >= {parallel_floor}x semi, got {ratio:.2}x \
             (semi {:.3} ms, parallel {:.3} ms)",
            r.workload,
            r.semi_ns as f64 / 1e6,
            r.parallel_ns as f64 / 1e6,
        );
    }

    println!(
        "{:<38} {:>12} {:>12} {:>12} {:>8} {:>7} {:>7}",
        "workload", "naive", "semi", "parallel", "speedup", "rows", "rounds"
    );
    for r in &records {
        println!(
            "{:<38} {:>9.3} ms {:>9.3} ms {:>9.3} ms {:>7.2}x {:>7} {:>7}",
            r.workload,
            r.naive_ns as f64 / 1e6,
            r.semi_ns as f64 / 1e6,
            r.parallel_ns as f64 / 1e6,
            r.naive_ns as f64 / r.semi_ns as f64,
            r.rows,
            r.rounds,
        );
    }

    if json {
        let mut out = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            let _ = write!(
                out,
                "  {{\"workload\":\"{}\",\"naive_ns\":{},\"semi_ns\":{},\"parallel_ns\":{},\
                 \"speedup\":{:.3},\"rows\":{},\"rounds\":{}}}{}",
                r.workload,
                r.naive_ns,
                r.semi_ns,
                r.parallel_ns,
                r.naive_ns as f64 / r.semi_ns as f64,
                r.rows,
                r.rounds,
                if i + 1 < records.len() { ",\n" } else { "\n" },
            );
        }
        out.push_str("]\n");
        let path = if smoke {
            "BENCH_chase_smoke.json"
        } else {
            "BENCH_chase.json"
        };
        std::fs::write(path, &out).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
