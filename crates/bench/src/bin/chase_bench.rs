//! Chase throughput measurement: semi-naive vs naive, sequential vs
//! parallel, across saturation and implication workloads — plus the
//! service scenario, where the three columns become *sequential `decide`*
//! vs *service (cached)* vs *service (cached + workers)* over a
//! cache-friendly query batch, with `rows` = jobs and `rounds` = answers
//! served without fresh work (cache hits + coalesced).
//!
//! Prints a table by default; with `--json` additionally writes
//! `BENCH_chase.json` (an array of per-workload records with median
//! nanoseconds and the speedup of column two over column one) for the perf
//! trajectory.
//!
//! Workload construction runs *outside* the timed region — only the chase
//! itself is measured. Each mode's runs are also parity-checked against
//! the naive reference (outcome, rounds, row count — answers, for the
//! service scenario) before reporting.
//!
//! Usage: `cargo run --release -p typedtd-bench --bin chase_bench [--json]`

use std::fmt::Write as _;
use std::time::Instant;
use typedtd_bench::{
    divergent_saturation_workload, egd_cascade_workload, egd_saturation_workload,
    mvd_chain_instance, saturation_workload, service_batch_workload, universe, Query,
};
use typedtd_chase::{chase_implication, decide, saturate, Answer, ChaseConfig, ChaseRun, DecideConfig};
use typedtd_relational::{Relation, ValuePool};
use typedtd_dependencies::TdOrEgd;
use typedtd_service::{ImplicationService, JobStatus, ServiceConfig};

struct Record {
    workload: String,
    naive_ns: u128,
    semi_ns: u128,
    parallel_ns: u128,
    rows: usize,
    rounds: usize,
}

/// Median over `samples` runs of `routine`, with `setup` excluded from the
/// timed region (iter_batched-style).
fn time<I, R>(
    samples: usize,
    mut setup: impl FnMut() -> I,
    mut routine: impl FnMut(I) -> R,
) -> (u128, R) {
    let mut times = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let input = setup();
        let t0 = Instant::now();
        last = Some(routine(input));
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    (
        times[times.len() / 2].as_nanos(),
        last.expect("samples >= 1"),
    )
}

type Workload = (Relation, Vec<TdOrEgd>, ValuePool);

/// Measures one saturation workload under naive / semi-naive / parallel
/// configs, asserting outcome + rounds + row-count parity across them.
///
/// The applied-trigger prefix in a budget-truncating round may differ
/// between modes, so parity here is deliberately not up-to-isomorphism
/// (that stronger check lives in `tests/seminaive_parity.rs`).
fn measure_saturation(
    workload: String,
    samples: usize,
    mut make: impl FnMut() -> Workload,
) -> Record {
    let run = |cfg: ChaseConfig, (init, sigma, mut pool): Workload| -> ChaseRun {
        saturate(&init, &sigma, &mut pool, &cfg)
    };
    let (naive_ns, run_n) = time(samples, &mut make, |w| {
        run(ChaseConfig::default().with_semi_naive(false), w)
    });
    let (semi_ns, run_s) = time(samples, &mut make, |w| run(ChaseConfig::default(), w));
    let (parallel_ns, run_p) = time(samples, &mut make, |w| {
        run(ChaseConfig::default().with_parallel(true), w)
    });
    for (mode, r) in [("semi", &run_s), ("parallel", &run_p)] {
        assert_eq!(run_n.outcome, r.outcome, "{mode} parity violated");
        assert_eq!(run_n.rounds, r.rounds, "{mode} parity violated");
        assert_eq!(
            run_n.final_relation.len(),
            r.final_relation.len(),
            "{mode} parity violated"
        );
    }
    Record {
        workload,
        naive_ns,
        semi_ns,
        parallel_ns,
        rows: run_s.final_relation.len(),
        rounds: run_s.rounds,
    }
}

/// As [`measure_saturation`] but chasing a goal (`chase_implication`).
fn measure_implication(len: usize, samples: usize) -> Record {
    let make = || {
        let u = universe(len + 1);
        let mut pool = ValuePool::new(u.clone());
        let (sigma, goal) = mvd_chain_instance(&u, &mut pool, len);
        (sigma, goal, pool)
    };
    let run = |cfg: ChaseConfig, (sigma, goal, mut pool): (Vec<TdOrEgd>, TdOrEgd, ValuePool)| {
        chase_implication(&sigma, &goal, &mut pool, &cfg)
    };
    let (naive_ns, run_n) = time(samples, make, |w| {
        run(ChaseConfig::default().with_semi_naive(false), w)
    });
    let (semi_ns, run_s) = time(samples, make, |w| run(ChaseConfig::default(), w));
    let (parallel_ns, run_p) = time(samples, make, |w| {
        run(ChaseConfig::default().with_parallel(true), w)
    });
    for (mode, r) in [("semi", &run_s), ("parallel", &run_p)] {
        assert_eq!(run_n.outcome, r.outcome, "{mode} parity violated");
        assert_eq!(run_n.rounds, r.rounds, "{mode} parity violated");
    }
    Record {
        workload: format!("implication/mvd_chain{len}"),
        naive_ns,
        semi_ns,
        parallel_ns,
        rows: run_s.final_relation.len(),
        rounds: run_s.rounds,
    }
}

/// Runs the batch through the service, returning answers in submission
/// order plus how many were served without fresh work.
fn run_service(queries: Vec<Query>, workers: usize) -> (Vec<Answer>, u64) {
    let mut service = ImplicationService::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    });
    let ids: Vec<_> = queries
        .into_iter()
        .map(|(sigma, goal, pool)| service.submit(sigma, goal, pool))
        .collect();
    service.run_to_completion();
    let answers = ids
        .iter()
        .map(|&id| match service.poll(id) {
            JobStatus::Done(outcome) => outcome.implication,
            JobStatus::Pending => unreachable!("run_to_completion resolves every job"),
        })
        .collect();
    let s = service.stats();
    (answers, s.cache_hits + s.coalesced)
}

/// The acceptance scenario: a cache-friendly batch decided three ways —
/// naive sequential `decide`, the service, the service with worker
/// threads. Answers must agree position-for-position.
fn measure_service_batch(distinct: usize, renamings: usize, samples: usize) -> Record {
    let make = || service_batch_workload(distinct, renamings, 1982);
    let decide_all = |queries: Vec<Query>| -> Vec<Answer> {
        queries
            .into_iter()
            .map(|(sigma, goal, mut pool)| {
                decide(&sigma, &goal, &mut pool, &DecideConfig::default()).implication
            })
            .collect()
    };
    let (naive_ns, seq_answers) = time(samples, make, decide_all);
    let (semi_ns, (svc_answers, served_free)) = time(samples, make, |q| run_service(q, 1));
    let (parallel_ns, (par_answers, _)) = time(samples, make, |q| run_service(q, 4));
    assert_eq!(seq_answers, svc_answers, "service parity violated");
    assert_eq!(seq_answers, par_answers, "worker-service parity violated");
    assert!(
        seq_answers.iter().all(|a| *a != Answer::Unknown),
        "batch must be fully decidable so the comparison is apples-to-apples"
    );
    Record {
        workload: format!("service_batch/d{distinct}xr{renamings}"),
        naive_ns,
        semi_ns,
        parallel_ns,
        rows: seq_answers.len(),
        rounds: served_free as usize,
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let records = vec![
        measure_implication(4, 7),
        measure_implication(5, 5),
        measure_saturation("saturation/w5/chain4/rows4".into(), 5, || {
            saturation_workload(5, 4, 4, 1982)
        }),
        measure_saturation("saturation/w6/chain5/rows6".into(), 5, || {
            saturation_workload(6, 5, 6, 1982)
        }),
        measure_saturation("saturation/w7/chain6/rows8".into(), 3, || {
            saturation_workload(7, 6, 8, 1982)
        }),
        measure_saturation("egd_saturation/w6/rows32/k2".into(), 3, || {
            egd_saturation_workload(6, 32, 2, 1982)
        }),
        measure_saturation("egd_saturation/w8/rows48/k2".into(), 3, || {
            egd_saturation_workload(8, 48, 2, 1982)
        }),
        measure_saturation("divergent_saturation/inert16".into(), 3, || {
            divergent_saturation_workload(16, 1982)
        }),
        measure_saturation("divergent_saturation/inert32".into(), 3, || {
            divergent_saturation_workload(32, 1982)
        }),
        measure_saturation("egd_cascade/chains4".into(), 3, || {
            egd_cascade_workload(4, 1982)
        }),
        measure_saturation("egd_cascade/chains8".into(), 3, || {
            egd_cascade_workload(8, 1982)
        }),
        measure_service_batch(4, 12, 3),
        measure_service_batch(6, 25, 3),
    ];

    println!(
        "{:<38} {:>12} {:>12} {:>12} {:>8} {:>7} {:>7}",
        "workload", "naive", "semi", "parallel", "speedup", "rows", "rounds"
    );
    for r in &records {
        println!(
            "{:<38} {:>9.3} ms {:>9.3} ms {:>9.3} ms {:>7.2}x {:>7} {:>7}",
            r.workload,
            r.naive_ns as f64 / 1e6,
            r.semi_ns as f64 / 1e6,
            r.parallel_ns as f64 / 1e6,
            r.naive_ns as f64 / r.semi_ns as f64,
            r.rows,
            r.rounds,
        );
    }

    if json {
        let mut out = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            let _ = write!(
                out,
                "  {{\"workload\":\"{}\",\"naive_ns\":{},\"semi_ns\":{},\"parallel_ns\":{},\
                 \"speedup\":{:.3},\"rows\":{},\"rounds\":{}}}{}",
                r.workload,
                r.naive_ns,
                r.semi_ns,
                r.parallel_ns,
                r.naive_ns as f64 / r.semi_ns as f64,
                r.rows,
                r.rounds,
                if i + 1 < records.len() { ",\n" } else { "\n" },
            );
        }
        out.push_str("]\n");
        std::fs::write("BENCH_chase.json", &out).expect("write BENCH_chase.json");
        println!("\nwrote BENCH_chase.json");
    }
}
