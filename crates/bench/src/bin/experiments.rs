//! The experiment harness: regenerates every displayed construction of the
//! paper (the per-experiment index E1–E15 of DESIGN.md).
//!
//! ```sh
//! cargo run -p typedtd-bench --bin experiments           # all
//! cargo run -p typedtd-bench --bin experiments -- ex1    # one
//! ```

use typedtd_chase::{
    chase_implication, random_counterexample, ChaseConfig, ChaseOutcome, SearchConfig,
};
use typedtd_core::{
    lemma10_exhibit, lemma4_check, sigma0_display, t_td, theorem2_instance, theorem6_instance,
    theta_fd_single, HatContext, Translator,
};
use typedtd_dependencies::{egd_from_names, td_from_names, Pjd, TdOrEgd};
use typedtd_formal::{all_pjds, fd_armstrong, prove, universe_bounded_decides, verify, Proof};
use typedtd_relational::{render_rows, Relation, Tuple, Universe, ValuePool};
use typedtd_semigroup::{frontier_instance, refute_in_finite_semigroup, Ei};

fn banner(id: &str, title: &str) {
    println!("\n==== {id}: {title} ====");
}

fn example1_relation(
    u: &std::sync::Arc<Universe>,
    pool: &mut ValuePool,
) -> Relation {
    let (a, b, c) = (pool.untyped("a"), pool.untyped("b"), pool.untyped("c"));
    Relation::from_rows(
        u.clone(),
        [Tuple::new(vec![a, b, c]), Tuple::new(vec![b, a, c])],
    )
}

fn ex1() {
    banner("E1", "Example 1 — T(I) for I = {(a,b,c), (b,a,c)}");
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let i = example1_relation(&u, &mut pool);
    let mut tr = Translator::new(u);
    let t_i = tr.t_relation(&pool, &i);
    let labels = ["s", "T(w1)", "T(w2)", "N(a)", "N(b)", "N(c)"];
    let tuples = t_i.tuples();
    let rows: Vec<(String, &Tuple)> = tuples
        .iter()
        .enumerate()
        .map(|(k, t)| (labels[k].to_string(), t))
        .collect();
    print!("{}", render_rows(tr.typed_universe(), tr.pool(), &rows));
    println!("paper: 6 rows (s, T(w1), T(w2), N(a), N(b), N(c)) — measured: {} rows", t_i.len());
}

fn ex2() {
    banner("E2", "Example 2 — T(σ) for σ = ((b,a,d), {(a,b,c)})");
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let td = td_from_names(&u, &mut pool, &[&["a", "b", "c"]], &["b", "a", "d"]);
    let mut tr = Translator::new(u);
    let t = t_td(&mut tr, &pool, &td);
    print!("{}", t.render(tr.pool()));
    println!(
        "paper: hypothesis of 5 rows, conclusion (b1,a2,d3,·,e0,f1) — measured: {} rows",
        t.hypothesis().len()
    );
}

fn sigma0_exp() {
    banner("E3", "σ₀ and Σ₀ (Section 4)");
    let u = Universe::untyped_abc();
    let mut tr = Translator::new(u);
    let (s0, fds) = sigma0_display(&mut tr);
    print!("{}", s0.render(tr.pool()));
    println!("plus the fds:");
    for fd in &fds {
        println!("  {}", fd.render(tr.typed_universe()));
    }
}

fn lemma1() {
    banner("E4", "Lemma 1 — T(I) ⊨ {AD→U, BD→U, CD→U, ABCE→U}");
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let i = example1_relation(&u, &mut pool);
    let mut tr = Translator::new(u);
    let t_i = tr.t_relation(&pool, &i);
    println!("holds on the Example 1 image: {}", tr.lemma1_holds(&t_i));
    println!("(randomized verification: tests/lemma_properties.rs::lemma1_randomized)");
}

fn lemma2() {
    banner("E5", "Lemma 2 — I ⊨ θ ⇔ T(I) ⊨ T(θ)");
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let td = TdOrEgd::Td(td_from_names(
        &u,
        &mut pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        &["x", "y1", "z2"],
    ));
    for (name, rows) in [
        ("closed", vec![["a", "b1", "c1"], ["a", "b2", "c2"], ["a", "b1", "c2"], ["a", "b2", "c1"]]),
        ("open", vec![["a", "b1", "c1"], ["a", "b2", "c2"]]),
    ] {
        let i = Relation::from_rows(
            u.clone(),
            rows.iter()
                .map(|r| Tuple::new(r.iter().map(|n| pool.untyped(n)).collect())),
        );
        let mut tr = Translator::new(u.clone());
        let (lhs, rhs) = typedtd_core::lemma2_check(&mut tr, &pool, &i, &td);
        println!("{name}: I ⊨ θ = {lhs}, T(I) ⊨ T(θ) = {rhs}  (equal: {})", lhs == rhs);
    }
}

fn lemma3() {
    banner("E6", "Lemma 3 — T⁻¹ on a typed counterexample");
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let sigma: Vec<TdOrEgd> = typedtd_core::abc_functionality(&u, &mut pool)
        .into_iter()
        .map(TdOrEgd::Egd)
        .collect();
    let goal = TdOrEgd::Egd(egd_from_names(
        &u,
        &mut pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        ("B'", "y1"),
        ("B'", "y2"),
    ));
    let mut inst = theorem2_instance(&u, &pool, &sigma, &goal);
    let run = chase_implication(
        &inst.sigma,
        &inst.goal,
        inst.translator.pool_mut(),
        &ChaseConfig::default(),
    );
    println!("typed chase outcome: {:?} (terminal counterexample, {} rows)",
        run.outcome, run.final_relation.len());
    let (d0, e0, f1) = (
        inst.translator.special("d0"),
        inst.translator.special("e0"),
        inst.translator.special("f1"),
    );
    let inv = typedtd_core::t_inverse(&run.final_relation, d0, e0, f1, &u, &mut pool);
    println!(
        "T⁻¹ image: {} rows; satisfies Σ: {}; violates σ: {}",
        inv.relation.len(),
        sigma.iter().all(|d| d.satisfied_by(&inv.relation)),
        !goal.satisfied_by(&inv.relation)
    );
}

fn lemma4() {
    banner("E7", "Lemma 4 — I ⊨ A'B'→C' ⇒ T(I) ⊨ σ₀");
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let i = Relation::from_rows(
        u.clone(),
        [["a", "b", "c"], ["b", "a", "c"], ["a", "a", "b"]]
            .iter()
            .map(|r| Tuple::new(r.iter().map(|n| pool.untyped(n)).collect())),
    );
    let mut tr = Translator::new(u);
    let (premise, conclusion) = lemma4_check(&mut tr, &pool, &i);
    println!("premise (I ⊨ A'B'→C'): {premise}; conclusion (T(I) ⊨ σ₀): {conclusion}");
}

fn ex3() {
    banner("E8", "Example 3 — the hat translation θ̂");
    let u = Universe::typed(vec!["A", "B", "C"]);
    let mut pool = ValuePool::new(u.clone());
    let theta = td_from_names(
        &u,
        &mut pool,
        &[&["a", "b1", "c1"], &["a1", "b", "c1"], &["a1", "b1", "c2"]],
        &["a", "b", "c3"],
    );
    println!("θ over U = ABC:");
    print!("{}", theta.render(&pool));
    let mut ctx = HatContext::new(&u, 3);
    let hat = ctx.hat_td(&theta);
    println!("θ̂ over Û (paper prints the same 4×12 tableau):");
    print!("{}", hat.render(ctx.pool()));
    println!("shallow: {}; as pjd: {}", hat.is_shallow(),
        Pjd::from_shallow_td(&hat).unwrap().render(ctx.hat_universe()));
}

fn ex4() {
    banner("E9", "Example 4 — θ_(A→B) over U = ABCDEF");
    let u = Universe::typed_abcdef();
    let mut pool = ValuePool::new(u.clone());
    let theta = theta_fd_single(&u, &mut pool, &u.set("A"), u.a("B"));
    print!("{}", theta.render(&pool));
    println!("total: {}", theta.is_total());
}

fn lemma7() {
    banner("E10", "Lemma 7 — I ⊨ θ ⇔ Î ⊨ θ̂");
    println!("randomized verification: tests/lemma_properties.rs::lemma7_randomized");
    let u = Universe::typed(vec!["A", "B", "C"]);
    let mut pool = ValuePool::new(u.clone());
    let theta = td_from_names(
        &u,
        &mut pool,
        &[&["a", "b1", "c1"], &["a1", "b", "c1"], &["a1", "b1", "c2"]],
        &["a", "b", "c3"],
    );
    let i = Relation::from_rows(
        u.clone(),
        [Tuple::new(vec![
            pool.typed(u.a("A"), "p"),
            pool.typed(u.a("B"), "q"),
            pool.typed(u.a("C"), "r"),
        ])],
    );
    let mut ctx = HatContext::new(&u, 3);
    let (lhs, rhs) = ctx.lemma7_check(&i, &pool, &theta);
    println!("single-row I: I ⊨ θ = {lhs}, Î ⊨ θ̂ = {rhs}");
}

fn lemma10() {
    banner("E11", "Lemma 10 — the printed chase derivation");
    let (u, mut pool, sigma, labels, goal) = lemma10_exhibit();
    let run = chase_implication(&sigma, &goal, &mut pool, &ChaseConfig::default());
    println!(
        "outcome: {:?}; breadth-first chase used {} row-adding steps,",
        run.outcome,
        run.trace.rows_added()
    );
    let proof = Proof::from_trace(run.trace);
    let min = typedtd_formal::minimize(&sigma, &goal, &proof);
    println!(
        "minimized to {} (paper's chain s1..s4, t has 5):",
        min.trace.rows_added()
    );
    print!("{}", min.trace.render(&u, &pool, &labels));
}

fn theorem6() {
    banner("E12", "Theorem 6 — td → shallow-td/pjd pipeline");
    let u = Universe::typed(vec!["A", "B", "C"]);
    let mut pool = ValuePool::new(u.clone());
    let td = td_from_names(
        &u,
        &mut pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        &["x", "y1", "z2"],
    );
    for (name, premises) in [("σ ∈ Σ", vec![td.clone()]), ("Σ = ∅", vec![])] {
        let mut inst = theorem6_instance(&premises, &td);
        let sigma = inst.chase_sigma();
        let goal = TdOrEgd::Td(inst.goal_hat.clone());
        let run = chase_implication(&sigma, &goal, inst.ctx.pool_mut(), &ChaseConfig::default());
        println!(
            "{name}: |Û| = {} attrs, {} shallow tds + {} mvds, goal {} → {:?}",
            inst.ctx.hat_universe().width(),
            inst.sigma_hat.len(),
            inst.mvds.len(),
            inst.goal_pjd.render(inst.ctx.hat_universe()),
            run.outcome
        );
    }
}

fn frontier() {
    banner("E13", "Theorems 1/3 — the undecidability frontier");
    let u = Universe::untyped_abc();
    for spec in [
        "x = y => x*z = y*z",
        "=> (x*y)*z = x*(y*z)",
        "=> x*y = y*x",
        "=> x*x = x",
    ] {
        let ei = Ei::parse(spec).unwrap();
        let mut pool = ValuePool::new(u.clone());
        let inst = frontier_instance(&ei, &mut pool, &u);
        let run = chase_implication(&inst.sigma, &inst.goal, &mut pool, &ChaseConfig::quick());
        let verdict = match run.outcome {
            ChaseOutcome::Implied => "Σ₁ ⊨ σ (chase proof)".to_string(),
            _ => {
                let cfg = SearchConfig { max_domain: 2, attempts: 200, ..Default::default() };
                match random_counterexample(&inst.sigma, &inst.goal, &u, &mut pool, &cfg) {
                    Some(cex) => format!("Σ₁ ⊭_f σ ({}-row counterexample)", cex.len()),
                    None => "undecided in budget".to_string(),
                }
            }
        };
        let finite = refute_in_finite_semigroup(&ei, 3).is_some();
        println!("{spec:28} → {verdict} (finite semigroup refutation exists: {finite})");
    }
}

fn formal() {
    banner("E14", "Theorems 7/8 — formal systems for pjds");
    let u = Universe::typed(vec!["A", "B"]);
    println!(
        "finitely many U-pjds over AB (≤2 components): {}",
        all_pjds(&u, 2).len()
    );
    let u3 = Universe::typed(vec!["A", "B", "C"]);
    let mut pool = ValuePool::new(u3.clone());
    let sigma = vec![Pjd::parse(&u3, "*[AB, AC]").unwrap()];
    for goal in ["*[AB, AC, BC]", "*[AB, BC]"] {
        let g = Pjd::parse(&u3, goal).unwrap();
        let ans = universe_bounded_decides(&sigma, &g, &u3, &mut pool);
        println!("total-jd enumeration decides *[AB, AC] ⊨ {goal}: {ans:?}");
    }
    // Theorem 8: a sound and complete (non-universe-bounded) system.
    let sigma_td: Vec<TdOrEgd> = sigma
        .iter()
        .map(|p| TdOrEgd::Td(p.to_td(&u3, &mut pool)))
        .collect();
    let goal_td = TdOrEgd::Td(Pjd::parse(&u3, "*[AB, AC, BC]").unwrap().to_td(&u3, &mut pool));
    let proof: Proof = prove(&sigma_td, &goal_td, &mut pool, &ChaseConfig::default()).unwrap();
    println!(
        "Theorem 8 proof object: {} steps; independent checker: {:?}",
        proof.trace.len(),
        verify(&sigma_td, &goal_td, &proof).is_ok()
    );
}

fn armstrong() {
    banner("E15", "Theorem 5 context — Armstrong relations");
    let u = Universe::typed(vec!["A", "B", "C", "D"]);
    let mut pool = ValuePool::new(u.clone());
    let fds = vec![
        typedtd_dependencies::Fd::parse(&u, "A -> B").unwrap(),
        typedtd_dependencies::Fd::parse(&u, "B -> C").unwrap(),
    ];
    let arm = fd_armstrong(&u, &mut pool, &fds);
    println!(
        "fd set {{A→B, B→C}} has a finite Armstrong relation with {} rows \
         (fds admit them; Theorem 5 shows Σ₂ of typed tds does not).",
        arm.len()
    );
}

fn main() {
    let filter: Option<String> = std::env::args().nth(1);
    let all: Vec<(&str, fn())> = vec![
        ("ex1", ex1),
        ("ex2", ex2),
        ("sigma0", sigma0_exp),
        ("lemma1", lemma1),
        ("lemma2", lemma2),
        ("lemma3", lemma3),
        ("lemma4", lemma4),
        ("ex3", ex3),
        ("ex4", ex4),
        ("lemma7", lemma7),
        ("lemma10", lemma10),
        ("theorem6", theorem6),
        ("frontier", frontier),
        ("formal", formal),
        ("armstrong", armstrong),
    ];
    let mut ran = 0;
    for (name, f) in &all {
        if filter.as_deref().is_none_or(|w| w == *name) {
            f();
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!(
            "unknown experiment {:?}; available: {}",
            filter.unwrap_or_default(),
            all.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(1);
    }
}
