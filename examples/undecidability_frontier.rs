//! Theorems 1–3, live: equational implications over semigroups become
//! dependency implication instances over the *fixed* set Σ₁; the chase
//! proves the valid ones, finite model search refutes the refutable ones,
//! and the ones in between are exactly where the paper's undecidability
//! lives.
//!
//! ```sh
//! cargo run --example undecidability_frontier
//! ```

use typedtd::chase::{
    chase_implication, random_counterexample, ChaseConfig, ChaseOutcome, SearchConfig,
};
use typedtd::prelude::*;
use typedtd::semigroup::{
    ei_valid_by_rewriting, frontier_instance, refute_in_finite_semigroup, Ei,
};

fn main() {
    let u = Universe::untyped_abc();

    let cases = [
        ("x = y => x*z = y*z", "congruence"),
        ("=> (x*y)*z = x*(y*z)", "associativity instance"),
        ("=> x*(x*x) = (x*x)*x", "power associativity"),
        ("=> x*y = y*x", "commutativity"),
        ("=> x*x = x", "idempotence"),
    ];

    for (spec, name) in cases {
        let ei = Ei::parse(spec).unwrap();
        println!("── {name}: {spec}");

        // Three independent procedures:
        // 1. word rewriting in the presented semigroup (validity side),
        let rewrite = ei_valid_by_rewriting(&ei, 20_000);
        // 2. exhaustive finite semigroups up to order 3 (refutation side),
        let finite = refute_in_finite_semigroup(&ei, 3);
        // 3. the dependency reduction + chase / model search.
        let mut pool = ValuePool::new(u.clone());
        let inst = frontier_instance(&ei, &mut pool, &u);
        let run = chase_implication(&inst.sigma, &inst.goal, &mut pool, &ChaseConfig::quick());

        println!("  word rewriting says valid: {rewrite:?}");
        println!(
            "  finite semigroup refutation (order ≤ 3): {}",
            match &finite {
                Some(t) => format!("yes, order {}", t.len()),
                None => "none found".to_string(),
            }
        );
        println!("  chase on (Σ₁, σ_φ): {:?}", run.outcome);

        match run.outcome {
            ChaseOutcome::Implied => {
                assert!(finite.is_none(), "chase proof and finite refutation clash");
                println!(
                    "  ⇒ Σ₁ ⊨ σ_φ (chase proof, {} steps)",
                    run.trace.len()
                );
            }
            ChaseOutcome::Exhausted | ChaseOutcome::NotImplied | ChaseOutcome::Cancelled => {
                let cfg = SearchConfig {
                    max_domain: 2,
                    attempts: 200,
                    ..Default::default()
                };
                match random_counterexample(&inst.sigma, &inst.goal, &u, &mut pool, &cfg) {
                    Some(cex) => {
                        println!(
                            "  ⇒ Σ₁ ⊭_f σ_φ: a {}-row counterexample table exists",
                            cex.len()
                        );
                        assert!(
                            finite.is_some(),
                            "dependency refutation must match semigroup refutation"
                        );
                    }
                    None => println!("  ⇒ undecided within budget (the paper's frontier)"),
                }
            }
        }
        println!();
    }

    println!(
        "Theorems 2 and 6 say no budget closes the gap above: implication for\n\
         typed tds and pjds is undecidable, and finite implication is not even\n\
         partially solvable."
    );
}
