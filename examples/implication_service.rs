//! The implication service end to end: many clients asking structurally
//! identical questions under fresh variable names, answered concurrently
//! with a shared cache.
//!
//! Run with `cargo run --example implication_service`.

use typedtd::service::{submit_batch, ImplicationService, ServiceConfig};

fn main() {
    // A workload the way a schema-checking service would see it: the same
    // constraint questions re-asked per tenant, plus a divergent query that
    // must not hold anybody else up.
    let text = "\
@universe A B C D
A -> B & B -> C |= A -> C
B -> C & A -> B |= A -> C
A ->> B |= A ->> B C D
A -> B |= B -> A
@universe untyped A' B' C'
td [x y1 z1 ; x y2 z2] => x y1 z2 |= td [a b1 c1 ; a b2 c2] => a b1 c2
td [u v w] => v q1 q2 |= egd [x y1 _ ; x y2 _] => y1 = y2
";

    let mut service = ImplicationService::new(ServiceConfig {
        slice_fuel: 4,
        global_fuel: Some(2_000),
        verify_cache_hits: true,
        ..ServiceConfig::default()
    });
    let batch = submit_batch(&mut service, text).expect("well-formed queries");
    service.run_to_completion();

    for q in &batch.queries {
        let v = q.conjoined(&service).expect("all jobs resolved");
        println!(
            "line {:>2}: implication={:<8?} finite={:<8?}{}  {}",
            q.line,
            v.implication,
            v.finite_implication,
            if v.from_cache { " [cached]" } else { "" },
            q.text
        );
    }
    let s = service.stats();
    println!(
        "\n{} jobs, {} answered free (cache {} + coalesced {}), {} fuel units, \
         {} distinct canonical queries",
        s.submitted,
        s.cache_hits + s.coalesced,
        s.cache_hits,
        s.coalesced,
        s.fuel_spent,
        service.cache_len(),
    );
}
