//! The implication service end to end: several tenant threads asking
//! structurally identical questions through clones of one shared-state
//! [`ImplicationClient`], each blocking on its own [`JobHandle`]s while
//! the answer cache and in-flight coalescing do most of the work.
//!
//! Run with `cargo run --example implication_service`.

use typedtd::dependencies::Dependency;
use typedtd::prelude::*;
use typedtd::service::{submit_batch, ImplicationClient, QuerySpec, ServiceConfig};

fn main() {
    let client = ImplicationClient::new(ServiceConfig {
        slice_fuel: 4,
        global_fuel: Some(2_000),
        verify_cache_hits: true,
        cache_capacity: 64,
        ..ServiceConfig::default()
    });

    // Part 1 — the batch front end, as `typedtd-serve` uses it: one file,
    // streamed answers, a divergent query that must not hold anybody up,
    // and a goal that is literally an element of Σ (answered at submit
    // time, no scheduling at all).
    let text = "\
@universe A B C D
A -> B & B -> C |= A -> C
B -> C & A -> B |= A -> C
A ->> B |= A ->> B C D
A -> B |= B -> A
A -> B & B -> C |= B -> C
@universe untyped A' B' C'
td [u v w] => v q1 q2 |= egd [x y1 _ ; x y2 _] => y1 = y2
";
    let batch = submit_batch(&client, text);
    client.run_to_completion();
    for q in &batch.queries {
        let v = q.conjoined().expect("all jobs resolved");
        println!(
            "line {:>2}: implication={:<8?} finite={:<8?}{}  {}",
            q.line,
            v.implication,
            v.finite_implication,
            if v.from_cache { " [cached]" } else { "" },
            q.text
        );
    }

    // Part 2 — the same constraint checked for many tenants at once:
    // every thread clones the client, submits its tenant's (renamed)
    // query, and blocks on its own handle. All threads step the shared
    // shards; all but the first leader are answered from cache or by
    // coalescing.
    let u = Universe::typed(vec!["A", "B", "C", "D"]);
    let tenants = 8;
    let answers: Vec<Answer> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..tenants)
            .map(|t| {
                let client = client.clone();
                let u = u.clone();
                scope.spawn(move || {
                    let mut pool = ValuePool::new(u.clone());
                    // Tenant-specific decoys give each pool fresh value
                    // handles — the canonical key sees through them.
                    pool.typed(AttrId(0), &format!("tenant{t}"));
                    let fds = [Fd::parse(&u, "A -> B").unwrap(), Fd::parse(&u, "B -> C").unwrap()];
                    let mut sigma = Vec::new();
                    for fd in &fds {
                        sigma.extend(Dependency::from(fd.clone()).normalize(&u, &mut pool));
                    }
                    let goal = Dependency::from(Fd::parse(&u, "A -> C").unwrap())
                        .normalize(&u, &mut pool)
                        .pop()
                        .expect("fd goal is one egd");
                    let job = client.submit(QuerySpec::new(sigma, goal, pool));
                    job.wait().implication
                    // `job` drops here: the outcome is polled, the slot is
                    // retired — nothing accumulates in the service.
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(answers.iter().all(|a| *a == Answer::Yes));
    println!("\n{tenants} tenant threads all answered Yes (fd transitivity)");

    let s = client.stats();
    println!(
        "{} jobs, {} answered free (cache {} + coalesced {} + goal-in-sigma {}), \
         hit rate {:.2}, {} fuel units, {} cached queries (cap {}), {} evictions, \
         {} retired",
        s.submitted,
        s.cache_hits + s.coalesced + s.goal_in_sigma,
        s.cache_hits,
        s.coalesced,
        s.goal_in_sigma,
        s.cache_hit_rate(),
        s.fuel_spent,
        client.cache_len(),
        client.config().cache_capacity,
        s.evictions,
        s.retired,
    );
}
