//! The paper's motivating application (Section 1): automated schema
//! design — deciding equivalence of dependency sets, detecting redundancy,
//! and checking lossless decompositions.
//!
//! ```sh
//! cargo run --example schema_design
//! ```

use typedtd::formal::{fd_armstrong, prove_checked};
use typedtd::prelude::*;

fn main() {
    // Schema: Employee, Department, Manager, Location.
    let u = Universe::typed(vec!["E", "D", "M", "L"]);
    let mut pool = ValuePool::new(u.clone());

    let design_a = vec![
        Dependency::from(Fd::parse(&u, "E -> D").unwrap()),
        Dependency::from(Fd::parse(&u, "D -> M").unwrap()),
        Dependency::from(Fd::parse(&u, "E -> M").unwrap()), // redundant?
        Dependency::from(Fd::parse(&u, "D -> L").unwrap()),
    ];
    let design_b = vec![
        Dependency::from(Fd::parse(&u, "E -> D").unwrap()),
        Dependency::from(Fd::parse(&u, "D -> ML").unwrap()),
    ];

    let cfg = DecideConfig::default();

    // --- Redundancy: is E -> M implied by the rest of design A? ---
    let rest: Vec<Dependency> = design_a
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(_, d)| d.clone())
        .collect();
    let verdict = decide_dependencies(&rest, &design_a[2], &u, &mut pool, &cfg);
    println!("E -> M redundant in design A: {:?}", verdict.implication);
    assert_eq!(verdict.implication, Answer::Yes);

    // --- Equivalence of the two designs: each implies the other. ---
    let mut equivalent = true;
    for (from, to, tag) in [(&design_a, &design_b, "A ⊨ B"), (&design_b, &design_a, "B ⊨ A")] {
        for goal in to.iter() {
            let v = decide_dependencies(from, goal, &u, &mut pool, &cfg);
            if v.implication != Answer::Yes {
                println!("{tag} fails at {}", goal.render(&u, &pool));
                equivalent = false;
            }
        }
    }
    println!("designs A and B equivalent: {equivalent}");
    assert!(equivalent);

    // --- Lossless decomposition: does design B guarantee that (E,D,M,L)
    //     splits into (E,D) ⋈ (D,M,L) without spurious tuples? ---
    let jd = Dependency::from(Pjd::parse(&u, "*[ED, DML]").unwrap());
    let v = decide_dependencies(&design_b, &jd, &u, &mut pool, &cfg);
    println!("*[ED, DML] lossless under design B: {:?}", v.implication);
    assert_eq!(v.implication, Answer::Yes);

    // And a certificate: a checkable chase proof for one normalized goal.
    let sigma_normal: Vec<TdOrEgd> = design_b
        .iter()
        .flat_map(|d| d.normalize(&u, &mut pool))
        .collect();
    let goal_normal = jd.normalize(&u, &mut pool).remove(0);
    let proof = prove_checked(&sigma_normal, &goal_normal, &mut pool, &ChaseConfig::default())
        .expect("proof exists and checks");
    println!("independent proof checker accepted {} steps", proof.trace.len());

    // --- An Armstrong relation for design B's fds: a single example
    //     database that exhibits exactly the implied fds. ---
    let fds: Vec<Fd> = vec![Fd::parse(&u, "E -> D").unwrap(), Fd::parse(&u, "D -> ML").unwrap()];
    let arm = fd_armstrong(&u, &mut pool, &fds);
    println!(
        "Armstrong relation for design B: {} rows; E -> D holds: {}, L -> E holds: {}",
        arm.len(),
        Fd::parse(&u, "E -> D").unwrap().satisfied_by(&arm),
        Fd::parse(&u, "L -> E").unwrap().satisfied_by(&arm),
    );
    assert!(Fd::parse(&u, "E -> D").unwrap().satisfied_by(&arm));
    assert!(!Fd::parse(&u, "L -> E").unwrap().satisfied_by(&arm));
}
