//! Section 3–4 of the paper, live: translate untyped relations and
//! dependencies to typed ones, reproduce Examples 1 and 2, verify Lemma 1,
//! and run the Theorem 2 reduction on a concrete implication instance.
//!
//! ```sh
//! cargo run --example typed_translation
//! ```

use typedtd::chase::{chase_implication, ChaseConfig, ChaseOutcome};
use typedtd::core::{sigma0_display, t_td, theorem2_instance, Translator};
use typedtd::dependencies::{egd_from_names, td_from_names, TdOrEgd};
use typedtd::prelude::*;
use typedtd::relational::render_rows;

fn main() {
    // ----- Example 1: T(I) for I = {(a,b,c), (b,a,c)} -----
    let u = Universe::untyped_abc();
    let mut pool = ValuePool::new(u.clone());
    let (a, b, c) = (pool.untyped("a"), pool.untyped("b"), pool.untyped("c"));
    let i = Relation::from_rows(
        u.clone(),
        [Tuple::new(vec![a, b, c]), Tuple::new(vec![b, a, c])],
    );
    let mut tr = Translator::new(u.clone());
    let t_i = tr.t_relation(&pool, &i);
    println!("Example 1 — T(I):");
    let labels = ["s", "T(w1)", "T(w2)", "N(a)", "N(b)", "N(c)"];
    let tuples = t_i.tuples();
    let rows: Vec<(String, &Tuple)> = tuples
        .iter()
        .enumerate()
        .map(|(k, t)| (labels[k].to_string(), t))
        .collect();
    println!("{}", render_rows(tr.typed_universe(), tr.pool(), &rows));

    // Lemma 1: the image satisfies the four fds.
    println!("Lemma 1 fds hold on T(I): {}\n", tr.lemma1_holds(&t_i));
    assert!(tr.lemma1_holds(&t_i));

    // ----- Example 2: T(σ) for σ = ((b,a,d), {(a,b,c)}) -----
    let td = td_from_names(&u, &mut pool, &[&["a", "b", "c"]], &["b", "a", "d"]);
    let t_sigma = t_td(&mut tr, &pool, &td);
    println!("Example 2 — T(σ):");
    println!("{}", t_sigma.render(tr.pool()));

    // ----- σ₀ and Σ₀ -----
    let (s0, fds) = sigma0_display(&mut tr);
    println!("σ₀ (the Section 4 auxiliary td):");
    println!("{}", s0.render(tr.pool()));
    println!("Σ₀ also contains the fds:");
    for fd in &fds {
        println!("  {}", fd.render(tr.typed_universe()));
    }

    // ----- Theorem 2 on a concrete implication -----
    // Untyped: Σ = {A'B' → C', the exchange td θ}; goal θ. Trivially
    // implied; the typed image must be implied as well.
    let theta = td_from_names(
        &u,
        &mut pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        &["x", "y1", "z2"],
    );
    let fun = egd_from_names(
        &u,
        &mut pool,
        &[&["p", "q", "r1"], &["p", "q", "r2"]],
        ("C'", "r1"),
        ("C'", "r2"),
    );
    let sigma = vec![TdOrEgd::Egd(fun), TdOrEgd::Td(theta.clone())];
    let goal = TdOrEgd::Td(theta);
    let mut inst = theorem2_instance(&u, &pool, &sigma, &goal);
    println!(
        "\nTheorem 2 instance: |T(Σ) ∪ Σ₀| = {} dependencies over {:?}",
        inst.sigma.len(),
        inst.translator.typed_universe()
    );
    let run = chase_implication(
        &inst.sigma,
        &inst.goal,
        inst.translator.pool_mut(),
        &ChaseConfig::default(),
    );
    println!("typed chase outcome: {:?} (rounds: {})", run.outcome, run.rounds);
    assert_eq!(run.outcome, ChaseOutcome::Implied);
}
