//! Quickstart: declare dependencies, test implication, inspect evidence.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use typedtd::prelude::*;
use typedtd::relational::render_relation;

fn main() {
    // A typed schema: Course, Teacher, Room.
    let u = Universe::typed(vec!["C", "T", "R"]);
    let mut pool = ValuePool::new(u.clone());

    // Business rules: each course has one teacher; teachers and rooms vary
    // independently given the course.
    let sigma = vec![
        Dependency::from(Fd::parse(&u, "C -> T").unwrap()),
        Dependency::from(Mvd::parse(&u, "C ->> R").unwrap()),
    ];

    println!("Σ:");
    for d in &sigma {
        println!("  {}", d.render(&u, &pool));
    }

    // Q1: does Σ imply the join dependency *[CT, CR]?
    let jd = Dependency::from(Pjd::parse(&u, "*[CT, CR]").unwrap());
    let verdict = decide_dependencies(&sigma, &jd, &u, &mut pool, &DecideConfig::default());
    println!("\nΣ ⊨ *[CT, CR] ?  {:?}", verdict.implication);
    assert_eq!(verdict.implication, Answer::Yes);

    // Q2: does Σ imply T -> C? No — and the engine hands back a finite
    // counterexample database.
    let goal = Dependency::from(Fd::parse(&u, "T -> C").unwrap());
    let verdict = decide_dependencies(&sigma, &goal, &u, &mut pool, &DecideConfig::default());
    println!("Σ ⊨ T -> C ?     {:?}", verdict.implication);
    assert_eq!(verdict.implication, Answer::No);
    let cex = verdict.counterexample.expect("refutation witness");
    println!("\ncounterexample relation (satisfies Σ, violates T -> C):");
    println!("{}", render_relation(&cex, &pool));

    // Q3: implication and finite implication agree on these decidable
    // classes; the library reports both.
    println!(
        "finite implication verdict matches: {:?}",
        verdict.finite_implication
    );
    assert_eq!(verdict.finite_implication, Answer::No);
}
