//! Section 6 of the paper, live: the hat translation (Example 3), the fd
//! simulation θ (Example 4), the Lemma 10 chase derivation, and the full
//! Theorem 6 pipeline from tds to projected join dependencies.
//!
//! ```sh
//! cargo run --example pjd_pipeline
//! ```

use typedtd::chase::{chase_implication, ChaseConfig, ChaseOutcome};
use typedtd::core::{lemma10_exhibit, theorem6_instance, theta_fd_single, HatContext};
use typedtd::dependencies::td_from_names;
use typedtd::prelude::*;

fn main() {
    // ----- Example 3: the hat translation -----
    let u = Universe::typed(vec!["A", "B", "C"]);
    let mut pool = ValuePool::new(u.clone());
    let theta = td_from_names(
        &u,
        &mut pool,
        &[&["a", "b1", "c1"], &["a1", "b", "c1"], &["a1", "b1", "c2"]],
        &["a", "b", "c3"],
    );
    println!("Example 3 — the td θ over U = ABC:");
    println!("{}", theta.render(&pool));
    let mut ctx = HatContext::new(&u, 3);
    let hat = ctx.hat_td(&theta);
    println!(
        "its shallow image θ̂ over Û ({} attributes, n = {}):",
        ctx.hat_universe().width(),
        ctx.n()
    );
    println!("{}", hat.render(ctx.pool()));
    assert!(hat.is_shallow());
    let as_pjd = Pjd::from_shallow_td(&hat).expect("shallow td is a pjd");
    println!("as a pjd (Lemma 6): {}\n", as_pjd.render(ctx.hat_universe()));

    // ----- Example 4: θ_{A→B} -----
    let u6 = Universe::typed_abcdef();
    let mut p6 = ValuePool::new(u6.clone());
    let theta_ab = theta_fd_single(&u6, &mut p6, &u6.set("A"), u6.a("B"));
    println!("Example 4 — θ_(A→B) over U = ABCDEF (a total td):");
    println!("{}", theta_ab.render(&p6));
    assert!(theta_ab.is_total());

    // ----- Lemma 10: the printed chase derivation -----
    let (lu, mut lpool, sigma, labels, goal) = lemma10_exhibit();
    let run = chase_implication(&sigma, &goal, &mut lpool, &ChaseConfig::default());
    assert_eq!(run.outcome, ChaseOutcome::Implied);
    println!(
        "Lemma 10 — the mvds among {{Ai, Aj, Ak}} derive θ_(Ai→Aj); the chase found it\nin {} row-adding steps:",
        run.trace.rows_added()
    );
    println!("{}", run.trace.render(&lu, &lpool, &labels));

    // ----- Theorem 6 end-to-end -----
    let mvd_td = td_from_names(
        &u,
        &mut pool,
        &[&["x", "y1", "z1"], &["x", "y2", "z2"]],
        &["x", "y1", "z2"],
    );
    let mut inst = theorem6_instance(std::slice::from_ref(&mvd_td), &mvd_td);
    println!(
        "Theorem 6 — translated instance: {} shallow tds, {} block mvds, goal pjd {}",
        inst.sigma_hat.len(),
        inst.mvds.len(),
        inst.goal_pjd.render(inst.ctx.hat_universe()),
    );
    let sigma = inst.chase_sigma();
    let goal = typedtd::dependencies::TdOrEgd::Td(inst.goal_hat.clone());
    let run = chase_implication(&sigma, &goal, inst.ctx.pool_mut(), &ChaseConfig::default());
    println!("chase outcome on the pjd side: {:?}", run.outcome);
    assert_eq!(run.outcome, ChaseOutcome::Implied);
}
